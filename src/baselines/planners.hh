#pragma once

/**
 * @file
 * Name-based planner factory: one place that maps the strategy names
 * used by adctl, the benches, and the docs ("AD", "LS", "CNN-P",
 * "IL-Pipe", "Rammer", "DTT") to configured Planner instances. Keeps
 * every driver loop strategy-agnostic.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/orchestrator.hh"
#include "core/planner.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** Strategy names makePlanner accepts, in canonical display order. */
const std::vector<std::string> &plannerNames();

/**
 * Build the planner registered under @p name (case-sensitive) for
 * @p system at @p batch. Throws ConfigError for unknown names.
 */
std::unique_ptr<core::Planner>
makePlanner(const std::string &name, const sim::SystemConfig &system,
            int batch);

/**
 * Like the batch-only overload, but "AD" and "DTT" honour the full
 * orchestrator option set (@p options.batch feeds every strategy;
 * DTT shares the AD front half, see baselines/dtt.hh). adctl and the
 * serving layer build all their planners through this one entry, so a
 * strategy name means the same configuration everywhere.
 */
std::unique_ptr<core::Planner>
makePlanner(const std::string &name, const sim::SystemConfig &system,
            const core::OrchestratorOptions &options);

} // namespace ad::baselines
