#include "il_pipe.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/cached_cost_model.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"

namespace ad::baselines {

namespace {

/** Cycles of @p layer evenly split over @p engines engines. */
Cycles
regionCycles(const graph::Layer &layer, int engines,
             const engine::CostModel &model, PicoJoules *energy_out)
{
    int nh = 1, nw = 1, nc = 1;
    while (nh * nw * nc < engines) {
        const int room_h = layer.out.h / (nh + 1);
        const int room_w = layer.out.w / (nw + 1);
        const int room_c = layer.out.c / (nc + 1);
        if (room_h >= room_w && room_h >= room_c && room_h >= 1) {
            ++nh;
        } else if (room_w >= room_c && room_w >= 1) {
            ++nw;
        } else if (room_c >= 1) {
            ++nc;
        } else {
            break;
        }
    }
    engine::AtomWorkload tile;
    tile.type = layer.type;
    tile.h = ceilDiv(layer.out.h, nh);
    tile.w = ceilDiv(layer.out.w, nw);
    tile.co = ceilDiv(layer.out.c, nc);
    tile.ci = layer.in.c;
    if (layer.type == graph::OpType::DepthwiseConv ||
        layer.type == graph::OpType::Pool ||
        layer.type == graph::OpType::Eltwise) {
        tile.ci = tile.co;
    }
    tile.window = layer.window;
    const auto result = model.evaluate(tile);
    const int tiles = nh * nw * nc;
    if (energy_out)
        *energy_out = result.energyPj * tiles;
    return result.cycles * ceilDiv(tiles, engines);
}

} // namespace

IlPipe::IlPipe(const sim::SystemConfig &system, IlPipeOptions options,
               sim::MeshView view)
    : _system(sim::viewSystem(
          system, view.resolved(system.meshX, system.meshY))),
      _options(options)
{
    _system.validate();
    if (_options.batch < 1)
        fatal("IL-Pipe batch must be at least 1");
    if (_options.maxSegmentLayers < 1)
        fatal("IL-Pipe segments need at least one layer");
}

core::PlanResult
IlPipe::plan(const graph::Graph &graph,
             obs::Instrumentation *ins) const
{
    const engine::CachedCostModel model(_system.engine,
                                        _system.dataflow);
    const int engines = _system.engines();
    const int B = _options.batch;
    const int bpe = _system.engine.bytesPerElem;

    // Collect compute layers in topological order.
    std::vector<const graph::Layer *> layers;
    MacCount total_macs = 0;
    for (const graph::Layer &layer : graph.layers()) {
        if (layer.type == graph::OpType::Input ||
            layer.type == graph::OpType::Concat) {
            continue;
        }
        layers.push_back(&layer);
        total_macs += layer.macs();
    }

    // Form segments of up to maxSegmentLayers (bounded also by one
    // engine minimum per layer), allocate engines proportional to MACs.
    Cycles total = 0;
    Cycles compute_total = 0;
    PicoJoules compute_energy = 0;
    Bytes hbm_reads = 0;
    Bytes hbm_writes = 0;
    Bytes noc_bytes = 0;
    Bytes fmap_onchip = 0;
    Bytes fmap_total = 0;
    int segments = 0;

    const int seg_len = std::min(_options.maxSegmentLayers, engines);
    const double fill_factor = _options.allo ? 0.5 : 1.0;

    for (std::size_t s0 = 0; s0 < layers.size();
         s0 += static_cast<std::size_t>(seg_len)) {
        const std::size_t s1 =
            std::min(layers.size(), s0 + static_cast<std::size_t>(seg_len));
        const auto stages = static_cast<int>(s1 - s0);
        ++segments;

        // Proportional engine allocation (min 1 per layer), then
        // iterative bottleneck smoothing: repeatedly move one engine
        // from the fastest stage to the slowest while it helps.
        MacCount seg_macs = 0;
        for (std::size_t i = s0; i < s1; ++i)
            seg_macs += std::max<MacCount>(layers[i]->macs(), 1);
        std::vector<int> alloc(static_cast<std::size_t>(stages), 1);
        int used = stages;
        for (std::size_t i = s0; i < s1; ++i) {
            const auto extra = static_cast<int>(
                static_cast<double>(engines - stages) *
                static_cast<double>(std::max<MacCount>(
                    layers[i]->macs(), 1)) /
                static_cast<double>(seg_macs));
            alloc[i - s0] += extra;
            used += extra;
        }
        auto stage_cycles = [&](std::size_t i) {
            return regionCycles(*layers[i], alloc[i - s0], model,
                                nullptr);
        };
        std::vector<Cycles> cyc(static_cast<std::size_t>(stages), 0);
        for (std::size_t i = s0; i < s1; ++i)
            cyc[i - s0] = stage_cycles(i);
        // Hand out leftover engines to the current bottleneck.
        while (used < engines) {
            const auto slow = static_cast<std::size_t>(
                std::max_element(cyc.begin(), cyc.end()) - cyc.begin());
            ++alloc[slow];
            ++used;
            cyc[slow] = stage_cycles(s0 + slow);
        }
        // Smoothing: donate from the fastest stage to the bottleneck.
        for (int iter = 0; iter < 4 * engines; ++iter) {
            const auto slow = static_cast<std::size_t>(
                std::max_element(cyc.begin(), cyc.end()) - cyc.begin());
            auto fast = slow;
            for (std::size_t j = 0; j < cyc.size(); ++j) {
                if (alloc[j] > 1 &&
                    (fast == slow || cyc[j] < cyc[fast])) {
                    fast = j;
                }
            }
            if (fast == slow)
                break;
            const Cycles before = cyc[slow];
            --alloc[fast];
            ++alloc[slow];
            cyc[fast] = stage_cycles(s0 + fast);
            cyc[slow] = stage_cycles(s0 + slow);
            const Cycles after =
                *std::max_element(cyc.begin(), cyc.end());
            if (after >= before) {
                // Revert a non-improving move and stop.
                ++alloc[fast];
                --alloc[slow];
                cyc[fast] = stage_cycles(s0 + fast);
                cyc[slow] = stage_cycles(s0 + slow);
                break;
            }
        }

        // Bottleneck stage paces the pipeline.
        Cycles t_bottleneck = 0;
        for (std::size_t i = s0; i < s1; ++i) {
            PicoJoules energy = 0;
            const Cycles c =
                regionCycles(*layers[i], alloc[i - s0], model, &energy);
            compute_energy += energy * B;
            t_bottleneck = std::max(t_bottleneck, c);
        }

        const double beats =
            static_cast<double>(B) +
            static_cast<double>(stages - 1) * fill_factor;
        const auto seg_total =
            static_cast<Cycles>(beats * static_cast<double>(t_bottleneck));
        total += seg_total;
        compute_total += seg_total; // pipeline is compute-paced

        // Traffic: segment boundary fmaps spill to DRAM; weights load
        // once per segment residency; intra-segment fmaps ride the NoC.
        const graph::Layer *last = layers[s1 - 1];
        hbm_writes += static_cast<Bytes>(B) * last->out.bytes(bpe);
        const graph::Layer *first = layers[s0];
        hbm_reads += static_cast<Bytes>(B) * first->in.bytes(bpe);
        for (std::size_t i = s0; i < s1; ++i) {
            hbm_reads += layers[i]->weightBytes(bpe);
            if (i > s0) {
                const Bytes moved =
                    static_cast<Bytes>(B) * layers[i]->in.bytes(bpe);
                noc_bytes += moved;
                fmap_onchip += moved;
            }
            fmap_total +=
                static_cast<Bytes>(B) * layers[i]->in.bytes(bpe);
        }
    }
    _segments = segments;

    sim::ExecutionReport report;
    report.batch = B;
    report.rounds = static_cast<std::uint64_t>(segments) *
                    static_cast<std::uint64_t>(B);
    report.totalCycles = total;
    const double total_pes = _system.totalPes();
    const auto batch_macs =
        static_cast<double>(total_macs) * static_cast<double>(B);
    if (total > 0) {
        report.peUtilization =
            batch_macs / (static_cast<double>(total) * total_pes);
        report.computeUtilization = report.peUtilization;
    }
    report.onChipReuseRatio =
        fmap_total > 0 ? static_cast<double>(fmap_onchip) /
                             static_cast<double>(fmap_total)
                       : 0.0;
    report.hbmReadBytes = hbm_reads;
    report.hbmWriteBytes = hbm_writes;
    report.nocBytes = noc_bytes;
    report.nocHopBytes = noc_bytes; // adjacent regions: ~1 hop
    report.computeEnergyPj = compute_energy;
    report.nocEnergyPj = static_cast<double>(noc_bytes) * 8.0 *
                         _system.noc.energyPjPerBitPerHop;
    report.hbmEnergyPj = static_cast<double>(hbm_reads + hbm_writes) *
                         8.0 * _system.hbm.energyPjPerBit;
    const double seconds =
        static_cast<double>(total) / (_system.engine.freqGhz * 1e9);
    report.staticEnergyPj =
        _system.engine.staticPowerMw * 1e-3 * seconds * 1e12 * engines;

    if (ins && ins->metrics) {
        ins->metrics->counter("ilpipe.segments")
            .add(static_cast<std::uint64_t>(segments));
        ins->metrics->counter("ilpipe.total_cycles")
            .add(report.totalCycles);
    }

    core::PlanResult result;
    result.report = report;
    return result;
}

} // namespace ad::baselines
