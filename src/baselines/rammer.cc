#include "rammer.hh"

namespace ad::baselines {

RammerScheduler::RammerScheduler(const sim::SystemConfig &system,
                                 int batch, sim::MeshView view)
    : _system(system), _batch(batch),
      _view(view.resolved(system.meshX, system.meshY))
{
    _system.validate();
    if (batch < 1)
        fatal("Rammer batch must be at least 1");
}

core::PlanResult
RammerScheduler::plan(const graph::Graph &graph,
                      obs::Instrumentation *ins) const
{
    core::OrchestratorOptions options;
    options.batch = _batch;
    // rTasks are fixed-size operator tiles from kernel templates —
    // Rammer does not search tile shapes against the PE geometry — and
    // they co-locate in dependency order with no transfer-cost-aware
    // placement and no graph-level lookahead. Inter-operator data moves
    // through off-chip memory (on the GPU Rammer targets, rTask outputs
    // land in global memory), so distributed-buffer reuse is off.
    options.atomGen = core::AtomGenMode::EvenPartition;
    options.scheduler.mode = core::SchedMode::LayerOrder;
    options.mapper.optimize = false;
    options.mapper.stableOrder = false;
    options.onChipReuse = false;
    const core::Orchestrator orchestrator(_system, options, _view);
    return orchestrator.plan(graph, ins);
}

} // namespace ad::baselines
