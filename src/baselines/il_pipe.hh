#pragma once

/**
 * @file
 * Inter-Layer Pipelining (IL-Pipe) baseline [Tangram, ASPLOS'19] as
 * characterized in Sec. II-B: cascaded layers of a segment map to
 * adjacent on-chip regions sized proportionally to each layer's compute;
 * images stream through the segment pipeline. Inter-segment feature maps
 * spill to DRAM; intra-segment maps move over the NoC between adjacent
 * regions. The pipeline pays fill/drain delay, halved when Alternate
 * Layer Loop Ordering (ALLO) fine-grained pipelining is enabled.
 */

#include "core/planner.hh"
#include "engine/cost_model.hh"
#include "graph/graph.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** IL-Pipe parameters. */
struct IlPipeOptions
{
    int batch = 1;
    /** Enable ALLO fine-grained pipelining (halves fill/drain). */
    bool allo = true;
    /** Maximum layers co-resident in one pipeline segment. */
    int maxSegmentLayers = 6;
};

/** Analytic IL-Pipe executor built on the substrate cost models. */
class IlPipe : public core::Planner
{
  public:
    /** Create an executor for @p view of @p system (default: whole
     * mesh); pipeline regions tile the view's engines only. */
    IlPipe(const sim::SystemConfig &system, IlPipeOptions options,
           sim::MeshView view = {});

    /** Planner interface. */
    std::string name() const override { return "IL-Pipe"; }

    /** Evaluate @p graph under IL-Pipe scheduling. Analytic: the
     * returned PlanResult has a null dag and empty schedule. */
    core::PlanResult plan(const graph::Graph &graph,
                          obs::Instrumentation *ins = nullptr)
        const override;

    /** Segments formed during the last plan() (diagnostics/tests). */
    int segmentCount() const { return _segments; }

  private:
    sim::SystemConfig _system;
    IlPipeOptions _options;
    mutable int _segments = 0;
};

} // namespace ad::baselines
