#pragma once

/**
 * @file
 * Layer-Sequential (LS) baseline: process DNN layers one at a time, each
 * evenly partitioned across all on-chip engines (Sec. II-B). For
 * throughput runs the enhanced variant maps several input samples
 * simultaneously (Sec. V-A) so small layers can still fill the mesh.
 */

#include "core/orchestrator.hh"
#include "graph/graph.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** LS parameters. */
struct LsOptions
{
    int batch = 1;
    /** Samples mapped simultaneously (enhanced LS); clamped to batch. */
    int samplesInFlight = 4;
};

/** The compile-time artifacts LS produces: the evenly-partitioned DAG
 * and the strict layer-order schedule (exposed so validation tooling
 * can audit them without re-deriving the LS conventions). */
struct LsPlan
{
    std::unique_ptr<core::AtomicDag> dag;
    core::Schedule schedule;
};

/** Layer-Sequential executor over the shared system simulator. */
class LayerSequential
{
  public:
    /** Create an executor for @p system. */
    LayerSequential(const sim::SystemConfig &system, LsOptions options);

    /** Build the LS partition and schedule for @p graph. */
    LsPlan plan(const graph::Graph &graph) const;

    /** Execute @p graph under LS scheduling. */
    sim::ExecutionReport run(const graph::Graph &graph) const;

    /**
     * Per-layer PE utilization of LS without communication delay —
     * the quantity Fig. 2 plots. Indexed by LayerId; non-MAC layers
     * report 0.
     */
    std::vector<double> layerUtilizations(const graph::Graph &graph) const;

  private:
    sim::SystemConfig _system;
    LsOptions _options;
};

} // namespace ad::baselines
