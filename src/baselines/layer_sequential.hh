#pragma once

/**
 * @file
 * Layer-Sequential (LS) baseline: process DNN layers one at a time, each
 * evenly partitioned across all on-chip engines (Sec. II-B). For
 * throughput runs the enhanced variant maps several input samples
 * simultaneously (Sec. V-A) so small layers can still fill the mesh.
 */

#include "core/orchestrator.hh"
#include "core/planner.hh"
#include "graph/graph.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** LS parameters. */
struct LsOptions
{
    int batch = 1;
    /** Samples mapped simultaneously (enhanced LS); clamped to batch. */
    int samplesInFlight = 4;
};

/** Deprecated alias (one release): LS plans are ordinary PlanResults
 * now; the dag/schedule fields audit tooling reads are unchanged. */
using LsPlan = core::PlanResult;

/** Layer-Sequential executor over the shared system simulator. */
class LayerSequential : public core::Planner
{
  public:
    /** Create an executor for @p view of @p system (default: whole
     * mesh); the even split spans the view's engines only. */
    LayerSequential(const sim::SystemConfig &system, LsOptions options,
                    sim::MeshView view = {});

    /** Planner interface. */
    std::string name() const override { return "LS"; }

    /** Build the evenly-partitioned DAG + strict layer-order schedule
     * for @p graph and execute it on the system simulator. */
    core::PlanResult plan(const graph::Graph &graph,
                          obs::Instrumentation *ins = nullptr)
        const override;

    /**
     * Per-layer PE utilization of LS without communication delay —
     * the quantity Fig. 2 plots. Indexed by LayerId; non-MAC layers
     * report 0.
     */
    std::vector<double> layerUtilizations(const graph::Graph &graph) const;

  private:
    sim::SystemConfig _base;  ///< the machine hosting the view
    sim::MeshView _view;      ///< resolved against _base
    sim::SystemConfig _system; ///< viewSystem(_base, _view)
    LsOptions _options;
};

} // namespace ad::baselines
