#include "dtt.hh"

#include <vector>

#include "engine/cached_cost_model.hh"
#include "obs/clock.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "sim/system.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ad::baselines {

DttPlanner::DttPlanner(const sim::SystemConfig &system,
                       core::OrchestratorOptions options,
                       core::DttOptions search, sim::MeshView view)
    : _base(system), _view(view.resolved(system.meshX, system.meshY)),
      _system(sim::viewSystem(system, _view)), _options(options),
      _search(search)
{
    _system.validate();
    _search.engines = _system.engines();
}

core::PlanResult
DttPlanner::plan(const graph::Graph &graph,
                 obs::Instrumentation *ins) const
{
    const obs::Stopwatch sw;

    // Front half: the full AD candidate sweep, untraced — the losing
    // candidates and the SA telemetry belong to the search, not to the
    // plan this call returns.
    const core::Orchestrator base(_base, _options, _view);
    core::PlanResult result = base.plan(graph, nullptr);

    bool exact = false;
    core::DttResult search;
    if (result.dag) {
        // Per-atom costs from the same memoized model every other
        // stage shares; each index writes only its own slot.
        const engine::CachedCostModel model(_system.engine,
                                            _system.dataflow);
        std::vector<Cycles> cycles(result.dag->size());
        util::ThreadPool::global().parallelFor(
            result.dag->size(), [&](std::size_t i) {
                cycles[i] = model.cycles(result.dag->workload(
                    static_cast<core::AtomId>(i)));
            });

        const auto found =
            core::dttSearch(*result.dag, cycles, _search);
        if (found) {
            search = *found;
            core::Schedule schedule = base.mapRounds(
                *result.dag, search.rounds, core::SchedMode::Dtt);
            const sim::SystemSimulator simulator(_base, _view);
            const sim::ExecutionReport report =
                simulator.execute(*result.dag, schedule);
            result.schedule = std::move(schedule);
            result.report = report;
            exact = true;
        } else {
            warn("DttPlanner: search gates tripped on a DAG of ",
                 result.dag->size(),
                 " atoms; serving the AD plan unchanged");
        }
    }

    if (ins) {
        if (obs::MetricsRegistry *const ms = ins->metrics) {
            ms->gauge("dtt.exact").set(exact ? 1.0 : 0.0);
            ms->counter("dtt.expanded_states")
                .add(search.expandedStates);
            ms->counter("dtt.discovered_states")
                .add(search.discoveredStates);
            ms->gauge("dtt.model_makespan")
                .set(static_cast<double>(search.makespan));
            ms->gauge("dtt.model_cost")
                .set(static_cast<double>(search.cost));
        }
        // Candidate evaluations and the search ran untraced;
        // re-execute only the returned plan with instrumentation.
        // Determinism makes the traced re-run bit-identical.
        if (result.dag) {
            const sim::SystemSimulator simulator(_base, _view);
            const sim::ExecutionReport traced = simulator.execute(
                *result.dag, result.schedule, ins);
            adAssert(traced.bitIdentical(result.report),
                     "instrumented re-execution diverged from the "
                     "uninstrumented DTT plan");
        }
    }

    result.searchSeconds = sw.seconds();
    return result;
}

} // namespace ad::baselines
