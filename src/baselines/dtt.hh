#pragma once

/**
 * @file
 * Dijkstra-Through-Time planner (ROADMAP item 3): the fifth strategy
 * behind baselines::makePlanner. It reuses the atomic-dataflow
 * pipeline's front half — the same SA atom generation and candidate
 * sweep as the "AD" Orchestrator, so both strategies plan over the
 * identical winning DAG and per-atom costs — then replaces the
 * heuristic DP Round search with the provably-optimal A* of
 * core::dttSearch() and maps the optimal Rounds through
 * Orchestrator::mapRounds().
 *
 * Because both strategies schedule the same DAG, DTT's Round-compute
 * makespan is never worse than AD's by construction, and it equals
 * check::bruteForceSchedule()'s optimum wherever that oracle is
 * tractable — the yardstick bench_dtt and the optimality tests pin.
 *
 * When a tractability gate trips (big DAGs), the planner keeps the AD
 * plan it already holds and reports dtt.exact = 0 — mirroring the
 * DpScheduler Dp -> Greedy downgrade idiom, a warn() plus a recorded
 * effective mode, never a failure.
 */

#include "core/dtt_search.hh"
#include "core/orchestrator.hh"
#include "graph/graph.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** Dijkstra-Through-Time planner. */
class DttPlanner : public core::Planner
{
  public:
    /**
     * Create a planner for @p view of @p system (default: the whole
     * mesh); @p options configures the shared atom-generation front
     * half (as for the Orchestrator) and @p search the DTT state-graph
     * search (engines is overwritten from the view).
     */
    DttPlanner(const sim::SystemConfig &system,
               core::OrchestratorOptions options = {},
               core::DttOptions search = {}, sim::MeshView view = {});

    /** Planner interface. */
    std::string name() const override { return "DTT"; }

    /**
     * Full plan (DAG + optimal Round schedule + report). With a
     * non-null @p ins, dtt.* search metrics and the winning schedule's
     * execution trace are recorded; results are bit-identical with and
     * without instrumentation, across thread counts, and across
     * processes.
     */
    core::PlanResult plan(const graph::Graph &graph,
                          obs::Instrumentation *ins = nullptr)
        const override;

    /** Search options in use (engines already pinned to the system). */
    const core::DttOptions &searchOptions() const { return _search; }

  private:
    sim::SystemConfig _base;  ///< the machine hosting the view
    sim::MeshView _view;      ///< resolved against _base
    sim::SystemConfig _system; ///< viewSystem(_base, _view)
    core::OrchestratorOptions _options;
    core::DttOptions _search;
};

} // namespace ad::baselines
