#pragma once

/**
 * @file
 * CNN-Partition (CNN-P) baseline [Shen et al., ISCA'17] as characterized
 * in Sec. II-B: on-chip resources are clustered into convolutional layer
 * processors (CLPs); the layer sequence is divided among CLPs; batched
 * images pipeline through the CLPs at layer granularity. Every CLP reads
 * its inputs and weights from off-chip memory and writes outputs back,
 * and a segment is paced by its slowest CLP.
 */

#include "core/planner.hh"
#include "engine/cost_model.hh"
#include "graph/graph.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** CNN-P parameters. */
struct CnnPOptions
{
    int batch = 1;
    /** CLP counts tried; the best-throughput clustering wins. */
    int maxClps = 16;
    /** Fraction of DRAM time hidden behind compute by double buffering
     * (Sec. V-B: CNN-P's DRAM traffic "cannot be completely overlapped
     * by double buffering"). */
    double overlapEfficiency = 0.7;
};

/** Analytic CNN-P executor built on the substrate cost models. */
class CnnPartition : public core::Planner
{
  public:
    /** Create an executor for @p view of @p system (default: whole
     * mesh); CLPs cluster the view's engines only. */
    CnnPartition(const sim::SystemConfig &system, CnnPOptions options,
                 sim::MeshView view = {});

    /** Planner interface. */
    std::string name() const override { return "CNN-P"; }

    /** Evaluate @p graph under CNN-P scheduling. Analytic: the returned
     * PlanResult has a null dag and empty schedule. */
    core::PlanResult plan(const graph::Graph &graph,
                          obs::Instrumentation *ins = nullptr)
        const override;

    /** The CLP count the last plan() selected (diagnostics/tests). */
    int selectedClps() const { return _selectedClps; }

  private:
    sim::SystemConfig _system;
    CnnPOptions _options;
    mutable int _selectedClps = 1;
};

} // namespace ad::baselines
