#pragma once

/**
 * @file
 * Untimed schedule views: human-readable and CSV renderings of a mapped
 * schedule — a Round-by-Round listing (which atom of which layer ran on
 * which engine) and a per-engine occupancy summary. These are the
 * static counterparts of the timed TraceRecorder exports; together they
 * form the `ad::obs` observability namespace. (Moved here from
 * `sim/trace.hh`, which now forwards.)
 */

#include <string>

#include "core/atomic_dag.hh"
#include "core/schedule.hh"

namespace ad::obs {

/** Rendering options. */
struct ScheduleViewOptions
{
    /** Rounds rendered in full before eliding (0 = all). */
    std::size_t maxRounds = 32;
};

/** Text listing: one line per placement, grouped by Round. */
std::string renderScheduleText(const core::AtomicDag &dag,
                               const core::Schedule &schedule,
                               const ScheduleViewOptions &options = {});

/** CSV: round,engine,atom,layer,sample,h0,h1,w0,w1,c0,c1. */
std::string renderScheduleCsv(const core::AtomicDag &dag,
                              const core::Schedule &schedule);

/** Per-engine placement counts ("occupancy histogram"). */
std::string renderEngineOccupancy(const core::Schedule &schedule,
                                  int engines);

} // namespace ad::obs
