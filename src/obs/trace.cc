#include "trace.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "obs/metrics.hh" // formatMetricValue

namespace ad::obs {

namespace {

/** JSON string escaping (quotes, backslash, control characters). */
std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** CSV field quoting (RFC 4180 double-quote convention). */
std::string
csvField(std::string_view s)
{
    if (s.find_first_of(",\"\n") == std::string_view::npos)
        return std::string(s);
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** The canonical total order every export uses. */
bool
eventLess(const TraceEvent &a, const TraceEvent &b)
{
    return std::tie(a.ts, a.track, a.kind, a.dur, a.name, a.args) <
           std::tie(b.ts, b.track, b.kind, b.dur, b.name, b.args);
}

const char *
kindName(TraceEvent::Kind kind)
{
    switch (kind) {
      case TraceEvent::Kind::Span:
        return "span";
      case TraceEvent::Kind::Instant:
        return "instant";
      case TraceEvent::Kind::Counter:
        return "counter";
    }
    return "?";
}

} // namespace

void
JsonArgs::prefix(std::string_view key)
{
    if (!_body.empty())
        _body += ',';
    _body += '"';
    _body += escapeJson(key);
    _body += "\":";
}

JsonArgs &
JsonArgs::add(std::string_view key, std::uint64_t v)
{
    prefix(key);
    _body += std::to_string(v);
    return *this;
}

JsonArgs &
JsonArgs::add(std::string_view key, std::int64_t v)
{
    prefix(key);
    _body += std::to_string(v);
    return *this;
}

JsonArgs &
JsonArgs::add(std::string_view key, int v)
{
    return add(key, static_cast<std::int64_t>(v));
}

JsonArgs &
JsonArgs::add(std::string_view key, double v)
{
    prefix(key);
    _body += formatMetricValue(v);
    return *this;
}

JsonArgs &
JsonArgs::add(std::string_view key, std::string_view v)
{
    prefix(key);
    _body += '"';
    _body += escapeJson(v);
    _body += '"';
    return *this;
}

TraceRecorder::TraceRecorder() = default;

TraceRecorder::Shard &
TraceRecorder::shardFor(std::int32_t track)
{
    return _shards[static_cast<std::uint32_t>(track) % kShards];
}

void
TraceRecorder::setProcessName(std::string name)
{
    util::MutexLock lk(_metaMu);
    _processName = std::move(name);
}

void
TraceRecorder::setTrackName(std::int32_t track, std::string name)
{
    util::MutexLock lk(_metaMu);
    _trackNames[track] = std::move(name);
}

void
TraceRecorder::span(std::int32_t track, Cycles ts, Cycles dur,
                    std::string_view name, std::string args)
{
    Shard &shard = shardFor(track);
    util::MutexLock lk(shard.mu);
    shard.events.push_back({TraceEvent::Kind::Span, track, ts, dur,
                            std::string(name), std::move(args)});
}

void
TraceRecorder::instant(std::int32_t track, Cycles ts,
                       std::string_view name, std::string args)
{
    Shard &shard = shardFor(track);
    util::MutexLock lk(shard.mu);
    shard.events.push_back({TraceEvent::Kind::Instant, track, ts, 0,
                            std::string(name), std::move(args)});
}

void
TraceRecorder::counter(std::int32_t track, Cycles ts,
                       std::string_view name, double value)
{
    std::string args = JsonArgs().add("value", value).str();
    Shard &shard = shardFor(track);
    util::MutexLock lk(shard.mu);
    shard.events.push_back({TraceEvent::Kind::Counter, track, ts, 0,
                            std::string(name), std::move(args)});
}

std::size_t
TraceRecorder::eventCount() const
{
    std::size_t n = 0;
    for (const Shard &shard : _shards) {
        util::MutexLock lk(shard.mu);
        n += shard.events.size();
    }
    return n;
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> all;
    all.reserve(eventCount());
    for (const Shard &shard : _shards) {
        util::MutexLock lk(shard.mu);
        all.insert(all.end(), shard.events.begin(), shard.events.end());
    }
    std::sort(all.begin(), all.end(), eventLess);
    return all;
}

std::string
TraceRecorder::perfettoJson() const
{
    const std::vector<TraceEvent> events = snapshot();
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    const auto sep = [&]() -> std::ostream & {
        if (!first)
            os << ",\n";
        first = false;
        return os;
    };
    {
        util::MutexLock lk(_metaMu);
        if (!_processName.empty()) {
            sep() << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                     "\"name\":\"process_name\",\"args\":{\"name\":\""
                  << escapeJson(_processName) << "\"}}";
        }
        // std::map iteration: track-id order, deterministic.
        for (const auto &[track, name] : _trackNames) {
            sep() << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << track
                  << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
                  << escapeJson(name) << "\"}}";
        }
    }
    for (const TraceEvent &e : events) {
        sep();
        switch (e.kind) {
          case TraceEvent::Kind::Span:
            os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.track
               << ",\"ts\":" << e.ts << ",\"dur\":" << e.dur;
            break;
          case TraceEvent::Kind::Instant:
            os << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << e.track
               << ",\"ts\":" << e.ts << ",\"s\":\"t\"";
            break;
          case TraceEvent::Kind::Counter:
            os << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << e.track
               << ",\"ts\":" << e.ts;
            break;
        }
        os << ",\"name\":\"" << escapeJson(e.name) << '"';
        if (!e.args.empty())
            os << ",\"args\":" << e.args;
        os << '}';
    }
    os << "\n]}\n";
    return os.str();
}

std::string
TraceRecorder::trackName(std::int32_t track) const
{
    util::MutexLock lk(_metaMu);
    const auto it = _trackNames.find(track);
    return it == _trackNames.end() ? std::string() : it->second;
}

std::string
TraceRecorder::timelineCsv() const
{
    const std::vector<TraceEvent> events = snapshot();
    std::ostringstream os;
    os << "track,track_name,kind,ts,dur,name,args\n";
    for (const TraceEvent &e : events) {
        os << e.track << ',' << csvField(trackName(e.track)) << ','
           << kindName(e.kind) << ',' << e.ts << ',' << e.dur << ','
           << csvField(e.name) << ',' << csvField(e.args) << '\n';
    }
    return os.str();
}

} // namespace ad::obs
