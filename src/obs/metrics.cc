#include "metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/common.hh"

namespace ad::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : _lo(lo), _width((hi - lo) / static_cast<double>(bins)),
      _bins(bins), _counts(bins, 0)
{
    adAssert(bins > 0, "histogram needs at least one bucket");
    adAssert(hi > lo, "histogram range must be non-empty");
}

void
HistogramMetric::observe(double value)
{
    std::size_t bin = 0;
    if (value >= _lo) {
        const double offset = (value - _lo) / _width;
        bin = offset >= static_cast<double>(_bins)
                  ? _bins - 1
                  : static_cast<std::size_t>(offset);
        // Guard against FP edge cases right at the upper boundary.
        if (bin >= _bins)
            bin = _bins - 1;
    }
    util::MutexLock lk(_mu);
    ++_counts[bin];
}

std::uint64_t
HistogramMetric::binCount(std::size_t i) const
{
    util::MutexLock lk(_mu);
    return _counts[i];
}

std::uint64_t
HistogramMetric::total() const
{
    util::MutexLock lk(_mu);
    std::uint64_t n = 0;
    for (std::uint64_t c : _counts)
        n += c;
    return n;
}

double
HistogramMetric::quantile(double q) const
{
    // Degenerate q values clamp rather than fault: NaN and anything
    // below 0 ask for the minimum, anything above 1 for the maximum.
    // (The negated comparison is what routes NaN to the first branch.)
    if (!(q >= 0.0))
        q = 0.0;
    else if (q > 1.0)
        q = 1.0;
    util::MutexLock lk(_mu);
    std::uint64_t n = 0;
    for (std::uint64_t c : _counts)
        n += c;
    if (n == 0)
        return _lo; // no observations: report the range floor
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(n))));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < _bins; ++i) {
        cumulative += _counts[i];
        if (cumulative >= target)
            return binHigh(i);
    }
    // Unreachable when the counts are consistent (target <= n), but
    // observe() clamps out-of-range values into the edge buckets, so
    // keep the overflow bucket's edge as the defensive answer.
    return binHigh(_bins - 1);
}

std::string
formatMetricValue(double v)
{
    // Shortest precision that round-trips, so dumps are stable and
    // minimal. %.17g always round-trips for finite doubles.
    char buf[64];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

/** One registered metric; exactly one payload is non-null. */
struct MetricsRegistry::Entry
{
    std::string name;
    int kind = 0; ///< 0 counter, 1 gauge, 2 histogram
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry &
MetricsRegistry::find(std::string_view name, int kind)
{
    util::MutexLock lk(_mu);
    for (const auto &entry : _metrics) {
        if (entry->name == name) {
            adAssert(entry->kind == kind, "metric '", entry->name,
                     "' re-registered with a different kind");
            return *entry;
        }
    }
    auto entry = std::make_unique<Entry>();
    entry->name = std::string(name);
    entry->kind = kind;
    _metrics.push_back(std::move(entry));
    return *_metrics.back();
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    Entry &entry = find(name, 0);
    if (!entry.counter)
        entry.counter = std::make_unique<Counter>();
    return *entry.counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    Entry &entry = find(name, 1);
    if (!entry.gauge)
        entry.gauge = std::make_unique<Gauge>();
    return *entry.gauge;
}

HistogramMetric &
MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                           std::size_t bins)
{
    Entry &entry = find(name, 2);
    if (!entry.histogram) {
        entry.histogram.reset(new HistogramMetric(lo, hi, bins));
    } else {
        adAssert(entry.histogram->bins() == bins &&
                     entry.histogram->binLow(0) == lo,
                 "histogram '", entry.name,
                 "' re-registered with a different shape");
    }
    return *entry.histogram;
}

std::size_t
MetricsRegistry::size() const
{
    util::MutexLock lk(_mu);
    return _metrics.size();
}

namespace {

bool
excluded(const std::string &name, std::string_view prefix)
{
    return !prefix.empty() &&
           name.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

std::string
MetricsRegistry::renderText(std::string_view exclude_prefix) const
{
    std::ostringstream os;
    util::MutexLock lk(_mu);
    for (const auto &entry : _metrics) {
        if (excluded(entry->name, exclude_prefix))
            continue;
        switch (entry->kind) {
          case 0:
            os << entry->name << ' ' << entry->counter->value() << '\n';
            break;
          case 1:
            os << entry->name << ' '
               << formatMetricValue(entry->gauge->value()) << '\n';
            break;
          default: {
            const HistogramMetric &h = *entry->histogram;
            for (std::size_t i = 0; i < h.bins(); ++i) {
                const std::uint64_t c = h.binCount(i);
                if (c == 0)
                    continue;
                os << entry->name << '['
                   << formatMetricValue(h.binLow(i)) << ','
                   << formatMetricValue(h.binHigh(i)) << ") " << c
                   << '\n';
            }
            os << entry->name << ".total " << h.total() << '\n';
            break;
          }
        }
    }
    return os.str();
}

std::string
MetricsRegistry::renderJson(std::string_view exclude_prefix) const
{
    std::ostringstream os;
    os << '{';
    bool first = true;
    util::MutexLock lk(_mu);
    for (const auto &entry : _metrics) {
        if (excluded(entry->name, exclude_prefix))
            continue;
        if (!first)
            os << ',';
        first = false;
        os << '"' << entry->name << "\":";
        switch (entry->kind) {
          case 0:
            os << entry->counter->value();
            break;
          case 1:
            os << formatMetricValue(entry->gauge->value());
            break;
          default: {
            const HistogramMetric &h = *entry->histogram;
            os << "{\"bins\":[";
            bool first_bin = true;
            for (std::size_t i = 0; i < h.bins(); ++i) {
                const std::uint64_t c = h.binCount(i);
                if (c == 0)
                    continue;
                if (!first_bin)
                    os << ',';
                first_bin = false;
                os << '[' << formatMetricValue(h.binLow(i)) << ','
                   << formatMetricValue(h.binHigh(i)) << ',' << c
                   << ']';
            }
            os << "],\"total\":" << h.total() << '}';
            break;
          }
        }
    }
    os << '}';
    return os.str();
}

} // namespace ad::obs
