#pragma once

/**
 * @file
 * Lock-sharded, deterministic timeline trace recorder.
 *
 * Producers (the system simulator, the orchestrator's search loop)
 * record spans, instants, and counter samples against integer tracks;
 * timestamps are *simulated* cycles, never wall time, so a trace is a
 * pure function of the inputs. Events append to one of a small number
 * of mutex-guarded shards (chosen by track id, so concurrent producers
 * on different tracks rarely contend), and every export first sorts the
 * merged event list by a total order — byte-identical output for any
 * thread count and any interleaving.
 *
 * Exports:
 *  - perfettoJson(): Chrome/Perfetto `trace_event` JSON (open in
 *    ui.perfetto.dev or chrome://tracing). One cycle renders as one
 *    microsecond of trace time.
 *  - timelineCsv(): flat CSV of the same events for scripted analysis.
 *
 * Zero overhead when disabled: recording methods are non-virtual, and
 * instrumented code holds a `TraceRecorder *` that is simply null when
 * tracing is off (see obs/instrumentation.hh).
 */

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.hh"
#include "util/thread_annotations.hh"

namespace ad::obs {

// Well-known tracks. Engine tracks are kTrackEngineBase + engine id;
// ids below the base are reserved for system-level timelines.
inline constexpr std::int32_t kTrackRounds = 0; ///< round barriers
inline constexpr std::int32_t kTrackNoc = 1;    ///< NoC multicasts
inline constexpr std::int32_t kTrackHbm = 2;    ///< HBM transactions
inline constexpr std::int32_t kTrackSearch = 3; ///< SA search telemetry
inline constexpr std::int32_t kTrackServe = 4;  ///< request-stream serving
inline constexpr std::int32_t kTrackEngineBase = 16;

/**
 * Incremental builder for a pre-rendered JSON `args` object. Building
 * the string at record time keeps TraceEvent trivially sortable and
 * avoids a second rendering pass at export.
 */
class JsonArgs
{
  public:
    JsonArgs &add(std::string_view key, std::uint64_t v);
    JsonArgs &add(std::string_view key, std::int64_t v);
    JsonArgs &add(std::string_view key, int v);
    JsonArgs &add(std::string_view key, double v);
    JsonArgs &add(std::string_view key, std::string_view v);

    /** The finished object, e.g. `{"atom":3,"bytes":4096}`. */
    std::string str() const { return "{" + _body + "}"; }

  private:
    void prefix(std::string_view key);
    std::string _body;
};

/** One recorded event. */
struct TraceEvent
{
    enum class Kind : std::uint8_t {
        Span,    ///< [ts, ts+dur) on a track (`ph:"X"`)
        Instant, ///< point event at ts (`ph:"i"`)
        Counter, ///< sampled series value at ts (`ph:"C"`)
    };

    Kind kind = Kind::Span;
    std::int32_t track = 0;
    Cycles ts = 0;
    Cycles dur = 0;      ///< spans only
    std::string name;
    std::string args;    ///< pre-rendered JSON object, or empty
};

/** Deterministic sharded trace collector. */
class TraceRecorder
{
  public:
    TraceRecorder();
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Display name of the traced process (one per recorder). */
    void setProcessName(std::string name);

    /** Display name of @p track (e.g. "engine 12"). */
    void setTrackName(std::int32_t track, std::string name);

    /** Record a [ts, ts+dur) span on @p track. */
    void span(std::int32_t track, Cycles ts, Cycles dur,
              std::string_view name, std::string args = {});

    /** Record a point event at @p ts on @p track. */
    void instant(std::int32_t track, Cycles ts, std::string_view name,
                 std::string args = {});

    /** Record a counter-series sample at @p ts on @p track. */
    void counter(std::int32_t track, Cycles ts, std::string_view name,
                 double value);

    /** Events recorded so far. */
    std::size_t eventCount() const;

    /** Merged copy of every event, in the canonical sorted order. */
    std::vector<TraceEvent> snapshot() const;

    /** Chrome/Perfetto `trace_event` JSON document. */
    std::string perfettoJson() const;

    /** CSV timeline: track,track_name,kind,ts,dur,name,args. */
    std::string timelineCsv() const;

  private:
    static constexpr std::size_t kShards = 16;

    struct Shard
    {
        mutable util::Mutex mu;
        std::vector<TraceEvent> events AD_GUARDED_BY(mu);
    };

    Shard &shardFor(std::int32_t track);
    std::string trackName(std::int32_t track) const;

    std::array<Shard, kShards> _shards;
    mutable util::Mutex _metaMu;
    std::string _processName AD_GUARDED_BY(_metaMu);
    std::map<std::int32_t, std::string> _trackNames
        AD_GUARDED_BY(_metaMu);
};

} // namespace ad::obs
