#include "schedule_views.hh"

#include <sstream>
#include <vector>

#include "util/common.hh"

namespace ad::obs {

std::string
renderScheduleText(const core::AtomicDag &dag,
                   const core::Schedule &schedule,
                   const ScheduleViewOptions &options)
{
    std::ostringstream os;
    const std::size_t limit = options.maxRounds == 0
                                  ? schedule.rounds.size()
                                  : options.maxRounds;
    for (std::size_t t = 0; t < schedule.rounds.size(); ++t) {
        if (t >= limit) {
            os << "... (" << schedule.rounds.size() - t
               << " more rounds)\n";
            break;
        }
        os << "round " << t << ":\n";
        for (const core::Placement &p : schedule.rounds[t].placements) {
            const core::Atom &a = dag.atom(p.atom);
            const auto &layer = dag.graph().layer(a.layer);
            os << "  engine " << p.engine << "  " << layer.name << "["
               << a.index << "] b" << a.batch << "  h" << a.hs << ".."
               << a.he << " w" << a.ws << ".." << a.we << " c" << a.cs
               << ".." << a.ce << "\n";
        }
    }
    return os.str();
}

std::string
renderScheduleCsv(const core::AtomicDag &dag,
                  const core::Schedule &schedule)
{
    std::ostringstream os;
    os << "round,engine,atom,layer,sample,h0,h1,w0,w1,c0,c1\n";
    for (std::size_t t = 0; t < schedule.rounds.size(); ++t) {
        for (const core::Placement &p : schedule.rounds[t].placements) {
            const core::Atom &a = dag.atom(p.atom);
            os << t << ',' << p.engine << ',' << p.atom << ','
               << dag.graph().layer(a.layer).name << ',' << a.batch
               << ',' << a.hs << ',' << a.he << ',' << a.ws << ','
               << a.we << ',' << a.cs << ',' << a.ce << '\n';
        }
    }
    return os.str();
}

std::string
renderEngineOccupancy(const core::Schedule &schedule, int engines)
{
    std::vector<std::size_t> counts(static_cast<std::size_t>(engines),
                                    0);
    for (const core::Round &round : schedule.rounds) {
        for (const core::Placement &p : round.placements) {
            adAssert(p.engine >= 0 && p.engine < engines,
                     "engine out of range in schedule");
            ++counts[static_cast<std::size_t>(p.engine)];
        }
    }
    std::ostringstream os;
    os << "engine occupancy (atoms per engine over "
       << schedule.rounds.size() << " rounds):\n";
    for (int e = 0; e < engines; ++e) {
        os << "  engine " << e << ": "
           << counts[static_cast<std::size_t>(e)] << "\n";
    }
    return os.str();
}

} // namespace ad::obs
