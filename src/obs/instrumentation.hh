#pragma once

/**
 * @file
 * The uniform instrumentation hook threaded through `ad::core::Planner`
 * and `ad::sim::Executor`.
 *
 * Both sinks are optional and independently nullable; a null sink means
 * "off" and costs one pointer test at each instrumentation site (no
 * virtual dispatch, no allocation — the zero-overhead-when-disabled
 * contract of DESIGN.md Sec. 11). Producers must hoist the sink pointer
 * once (`obs::TraceRecorder *tr = ins ? ins->trace : nullptr;`) and
 * guard each record with `if (tr)`.
 */

namespace ad::obs {

class TraceRecorder;
class MetricsRegistry;

/** Optional sinks handed to planners and executors. */
struct Instrumentation
{
    TraceRecorder *trace = nullptr;    ///< timeline events, or null
    MetricsRegistry *metrics = nullptr; ///< counters/gauges, or null
};

} // namespace ad::obs
