#pragma once

/**
 * @file
 * Metrics registry: named counters, gauges, and fixed-bucket histograms
 * with stable registration order.
 *
 * The registry subsumes the ad-hoc conservation counters that used to
 * live only in ExecutionReport and adds orchestrator-side telemetry (SA
 * iterations and accept rate, per-stage wall time, cost-model cache
 * behaviour). Design constraints:
 *
 *  - Registration returns a stable reference: entries are heap-allocated
 *    and never move, so hot paths update a pre-fetched metric without
 *    touching the registry lock.
 *  - Rendering walks entries in registration order (never hash order),
 *    so two runs that register and update identically produce
 *    byte-identical dumps — the determinism contract the trace recorder
 *    also honours. Nondeterministic host-side metrics (wall times,
 *    process-wide cache statistics) are conventionally named under the
 *    reserved `host.` prefix so determinism checks can exclude them.
 *  - Counter/Gauge updates are relaxed atomics; Histogram::observe takes
 *    a short mutex. None of this is on the simulator hot path unless a
 *    registry is actually attached.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hh"

namespace ad::obs {

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    /** Add @p delta (relaxed; per-thread order is irrelevant). */
    void
    add(std::uint64_t delta = 1)
    {
        _value.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Current value. */
    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/** Last-write-wins floating-point metric. */
class Gauge
{
  public:
    /** Set the gauge to @p value. */
    void set(double value) { _value.store(value, std::memory_order_relaxed); }

    /** Current value. */
    double value() const { return _value.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> _value{0.0};
};

/**
 * Fixed-width-bucket histogram over [lo, hi). Out-of-range observations
 * clamp to the edge buckets (bucket 0 below lo, the last bucket at or
 * above hi), so totals are conserved and dumps stay bounded.
 */
class HistogramMetric
{
  public:
    /** Bucket count. */
    std::size_t bins() const { return _bins; }

    /** Inclusive lower edge of bucket @p i. */
    double
    binLow(std::size_t i) const
    {
        return _lo + static_cast<double>(i) * _width;
    }

    /** Exclusive upper edge of bucket @p i. */
    double binHigh(std::size_t i) const { return binLow(i + 1); }

    /** Record one observation. */
    void observe(double value);

    /** Observations landed in bucket @p i. */
    std::uint64_t binCount(std::size_t i) const;

    /** Total observations. */
    std::uint64_t total() const;

    /**
     * Bucket-resolution quantile: the exclusive upper edge of the first
     * bucket at which the cumulative count reaches ceil(q * total).
     * @p q is clamped to [0, 1] (NaN counts as 0); an empty histogram
     * returns binLow(0), and values observe() clamped into the edge
     * buckets resolve to those buckets' edges.
     * Deterministic (a pure function of the recorded counts), so serving
     * dashboards can report p50/p99 without breaking byte-identity.
     */
    double quantile(double q) const;

  private:
    friend class MetricsRegistry;
    HistogramMetric(double lo, double hi, std::size_t bins);

    double _lo;
    double _width;
    std::size_t _bins;
    mutable util::Mutex _mu;
    std::vector<std::uint64_t> _counts AD_GUARDED_BY(_mu);
};

/**
 * Named-metric registry. Re-registering a name returns the existing
 * metric (kind and histogram shape must match — a mismatch is a bug and
 * panics). Thread-safe; references stay valid for the registry's
 * lifetime.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Counter named @p name (registered on first use). */
    Counter &counter(std::string_view name);

    /** Gauge named @p name (registered on first use). */
    Gauge &gauge(std::string_view name);

    /** Histogram named @p name over [lo, hi) with @p bins buckets. */
    HistogramMetric &histogram(std::string_view name, double lo,
                               double hi, std::size_t bins);

    /** Registered metric count. */
    std::size_t size() const;

    /**
     * One `name value` line per metric, registration order. Metrics
     * whose name starts with @p exclude_prefix are skipped (pass
     * "host." to drop nondeterministic host-side metrics from
     * determinism comparisons).
     */
    std::string renderText(std::string_view exclude_prefix = {}) const;

    /** JSON object keyed by metric name, registration order. */
    std::string renderJson(std::string_view exclude_prefix = {}) const;

  private:
    struct Entry;
    Entry &find(std::string_view name, int kind);

    mutable util::Mutex _mu;
    std::vector<std::unique_ptr<Entry>> _metrics AD_GUARDED_BY(_mu);
};

/**
 * Shortest round-trippable decimal rendering of @p v ("%.17g" pruned):
 * the fixed formatting every registry dump uses, so equal values always
 * produce equal bytes.
 */
std::string formatMetricValue(double v);

} // namespace ad::obs
