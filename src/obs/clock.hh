#pragma once

/**
 * @file
 * The only sanctioned wall-clock accessor in the tree.
 *
 * Simulated time (Cycles) drives every trace timestamp, so traces and
 * metrics stay byte-identical across runs and thread counts. Wall time
 * is still useful — search-cost reporting, per-stage profiling — but it
 * must never leak into schedules, traces, or seeds. The adlint
 * `wall-clock` rule forbids `std::chrono::steady_clock` (and friends)
 * outside `src/obs`, so every wall-time read flows through this
 * Stopwatch and stays auditable.
 */

#include <chrono>

namespace ad::obs {

/** Monotonic elapsed-seconds timer (the instrumentation clock). */
class Stopwatch
{
  public:
    /** Starts timing at construction. */
    Stopwatch() : _start(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction or the last restart(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - _start)
            .count();
    }

    /** Returns seconds() and resets the start point to now. */
    double
    restart()
    {
        const auto now = std::chrono::steady_clock::now();
        const double s =
            std::chrono::duration<double>(now - _start).count();
        _start = now;
        return s;
    }

  private:
    std::chrono::steady_clock::time_point _start;
};

} // namespace ad::obs
