#pragma once

/**
 * @file
 * The unified planning interface: a Planner turns a layer graph into a
 * mapped atomic-dataflow plan (DAG + Round schedule) together with the
 * execution report of that plan on the configured system. The
 * atomic-dataflow Orchestrator and all four baseline strategies
 * implement it, so benches, tools, and tests drive every strategy
 * through one API (see baselines/planners.hh for the name factory).
 *
 * Analytic baselines that never materialize a schedule (CNN-Partition,
 * IL-Pipe) return a PlanResult with a null `dag` and an empty
 * `schedule`; the report is always filled.
 */

#include <memory>
#include <string>

#include "core/atomic_dag.hh"
#include "core/schedule.hh"
#include "graph/graph.hh"
#include "sim/report.hh"

namespace ad::obs {
struct Instrumentation;
} // namespace ad::obs

namespace ad::core {

/** Outcome of planning one workload under one strategy. */
struct PlanResult
{
    /** The atom decomposition, or null for analytic baselines. */
    std::unique_ptr<AtomicDag> dag;

    /** Mapped Round schedule (empty for analytic baselines). */
    Schedule schedule;

    /** Execution report of the planned schedule. */
    sim::ExecutionReport report;

    /** Wall time spent searching (informational; excluded from every
     * determinism comparison). */
    double searchSeconds = 0.0;
};

/** Strategy interface: graph in, plan + report out. */
class Planner
{
  public:
    virtual ~Planner();

    /** Short stable strategy name ("AD", "LS", "CNN-P", ...). */
    virtual std::string name() const = 0;

    /** Plan @p graph. When @p ins is non-null, search telemetry and
     * execution traces are recorded through it; planning results are
     * bit-identical with and without instrumentation. */
    virtual PlanResult plan(const graph::Graph &graph,
                            obs::Instrumentation *ins = nullptr)
        const = 0;

    /** Convenience: plan and keep only the report. */
    sim::ExecutionReport run(const graph::Graph &graph,
                             obs::Instrumentation *ins = nullptr) const;
};

} // namespace ad::core
