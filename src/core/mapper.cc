#include "mapper.hh"

#include <algorithm>
#include <limits>
#include <numeric>

namespace ad::core {

AtomEngineMapper::AtomEngineMapper(const AtomicDag &dag,
                                   const noc::MeshTopology &topo,
                                   MapperOptions options)
    : _dag(&dag), _topo(&topo), _options(options)
{
    // Boustrophedon (zig-zag) enumeration of the mesh: row 0 left-to-
    // right, row 1 right-to-left, ... so consecutive engines are always
    // mesh-adjacent.
    _zigzag.reserve(static_cast<std::size_t>(topo.nodes()));
    for (int y = 0; y < topo.ydim(); ++y) {
        if (y % 2 == 0) {
            for (int x = 0; x < topo.xdim(); ++x)
                _zigzag.push_back(topo.idOf({x, y}));
        } else {
            for (int x = topo.xdim() - 1; x >= 0; --x)
                _zigzag.push_back(topo.idOf({x, y}));
        }
    }
}

std::uint64_t
AtomEngineMapper::transferCost(const std::vector<Placement> &placements,
                               const ResidencyTracker &residency) const
{
    std::uint64_t cost = 0;
    for (const Placement &p : placements) {
        const auto dep_ids = _dag->depsSpan(p.atom);
        const auto dep_bytes = _dag->depBytesSpan(p.atom);
        for (std::size_t di = 0; di < dep_ids.size(); ++di) {
            const SourceInfo src = residency.locate(dep_ids[di]);
            if (src.location != Location::OnChip)
                continue;
            if (src.engine == p.engine)
                continue; // local reuse, zero hops
            cost += static_cast<std::uint64_t>(
                        _topo->hops(src.engine, p.engine)) *
                    dep_bytes[di];
        }
        // Weight affinity: landing on an engine that already holds the
        // (layer, slice) weights avoids replicating them.
        const Bytes wbytes = _dag->weightBytes(p.atom);
        if (wbytes > 0) {
            const Atom &a = _dag->atom(p.atom);
            const int holder = residency.weightHolder(a.layer, a.cs);
            if (holder >= 0 && holder != p.engine) {
                cost += static_cast<std::uint64_t>(
                            _topo->hops(holder, p.engine)) *
                        wbytes;
            }
        }
    }
    return cost;
}

std::uint64_t
AtomEngineMapper::atomCost(AtomId atom, int engine,
                           const ResidencyTracker &residency) const
{
    std::uint64_t cost = 0;
    const auto dep_ids = _dag->depsSpan(atom);
    const auto dep_bytes = _dag->depBytesSpan(atom);
    for (std::size_t di = 0; di < dep_ids.size(); ++di) {
        const SourceInfo src = residency.locate(dep_ids[di]);
        if (src.location != Location::OnChip || src.engine == engine)
            continue;
        cost += static_cast<std::uint64_t>(
                    _topo->hops(src.engine, engine)) *
                dep_bytes[di];
    }
    const Bytes wbytes = _dag->weightBytes(atom);
    if (wbytes > 0) {
        const Atom &a = _dag->atom(atom);
        const int holder = residency.weightHolder(a.layer, a.cs);
        if (holder >= 0 && holder != engine) {
            cost += static_cast<std::uint64_t>(
                        _topo->hops(holder, engine)) *
                    wbytes;
        }
    }
    return cost;
}

std::vector<Placement>
AtomEngineMapper::refine(std::vector<Placement> placements,
                         const ResidencyTracker &residency) const
{
    // Greedy slot assignment: keep the permutation's atom order but let
    // each atom take the free engine with the lowest transfer + weight
    // affinity cost (zig-zag rank breaks ties), so a layer re-entering
    // in a later Round lands on the engines that still hold its weights
    // and neighbouring tiles.
    std::vector<bool> taken(static_cast<std::size_t>(_topo->nodes()),
                            false);
    for (Placement &p : placements) {
        int best_engine = -1;
        std::uint64_t best_cost = 0;
        // Scan in zig-zag order so ties keep the boustrophedon layout;
        // a zero-cost engine (all inputs local) cannot be beaten.
        for (int slot = 0; slot < _topo->nodes(); ++slot) {
            const int e = _zigzag[static_cast<std::size_t>(slot)];
            if (taken[static_cast<std::size_t>(e)])
                continue;
            const std::uint64_t cost = atomCost(p.atom, e, residency);
            if (best_engine < 0 || cost < best_cost) {
                best_engine = e;
                best_cost = cost;
                if (cost == 0)
                    break;
            }
        }
        adAssert(best_engine >= 0, "no free engine for atom");
        p.engine = best_engine;
        taken[static_cast<std::size_t>(best_engine)] = true;
    }
    return placements;
}

std::vector<Placement>
AtomEngineMapper::placeInOrder(
    const std::vector<std::vector<AtomId>> &groups,
    const std::vector<std::size_t> &perm) const
{
    std::vector<Placement> placements;
    std::size_t slot = 0;
    for (std::size_t gi : perm) {
        for (AtomId a : groups[gi]) {
            adAssert(slot < _zigzag.size(),
                     "round has more atoms than engines");
            placements.push_back({a, _zigzag[slot++]});
        }
    }
    return placements;
}

std::vector<Placement>
AtomEngineMapper::mapRound(const std::vector<AtomId> &atoms,
                           const ResidencyTracker &residency) const
{
    adAssert(atoms.size() <= _zigzag.size(),
             "round has more atoms than engines");

    // Group atoms by layer, preserving arrival order.
    std::vector<graph::LayerId> layer_of_group;
    std::vector<std::vector<AtomId>> groups;
    for (AtomId a : atoms) {
        const graph::LayerId layer = _dag->atom(a).layer;
        auto it = std::find(layer_of_group.begin(), layer_of_group.end(),
                            layer);
        if (it == layer_of_group.end()) {
            layer_of_group.push_back(layer);
            groups.emplace_back();
            groups.back().push_back(a);
        } else {
            groups[static_cast<std::size_t>(
                       it - layer_of_group.begin())]
                .push_back(a);
        }
    }

    // Stable intra-group order (by tile index): identical layers recur at
    // the same engine slots Round over Round, so resident weight slices
    // and neighbouring tiles are reused instead of replicated.
    if (_options.stableOrder)
    for (auto &group : groups) {
        std::sort(group.begin(), group.end(),
                  [this](AtomId a, AtomId b) {
                      const Atom &aa = _dag->atom(a);
                      const Atom &ab = _dag->atom(b);
                      return aa.index < ab.index;
                  });
    }

    std::vector<std::size_t> perm(groups.size());
    std::iota(perm.begin(), perm.end(), 0);

    if (!_options.optimize)
        return placeInOrder(groups, perm);
    if (groups.size() <= 1)
        return refine(placeInOrder(groups, perm), residency);

    if (static_cast<int>(groups.size()) <= _options.maxPermutationLayers) {
        // Exhaustive M! search (paper footnote 4).
        std::vector<std::size_t> best_perm = perm;
        std::uint64_t best_cost =
            std::numeric_limits<std::uint64_t>::max();
        std::sort(perm.begin(), perm.end());
        do {
            const auto placements = placeInOrder(groups, perm);
            const std::uint64_t cost =
                transferCost(placements, residency);
            if (cost < best_cost) {
                best_cost = cost;
                best_perm = perm;
            }
        } while (std::next_permutation(perm.begin(), perm.end()));
        return refine(placeInOrder(groups, best_perm), residency);
    }

    // Greedy fallback: grow the permutation one group at a time, always
    // appending the group that adds the least transfer cost.
    std::vector<std::size_t> order;
    std::vector<bool> used(groups.size(), false);
    while (order.size() < groups.size()) {
        std::size_t best_group = 0;
        std::uint64_t best_cost =
            std::numeric_limits<std::uint64_t>::max();
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            if (used[gi])
                continue;
            auto trial = order;
            trial.push_back(gi);
            const auto placements = placeInOrder(groups, trial);
            const std::uint64_t cost =
                transferCost(placements, residency);
            if (cost < best_cost) {
                best_cost = cost;
                best_group = gi;
            }
        }
        used[best_group] = true;
        order.push_back(best_group);
    }
    return refine(placeInOrder(groups, order), residency);
}

} // namespace ad::core
