#include "schedule.hh"

#include "util/common.hh"

namespace ad::core {

const char *
schedModeName(SchedMode mode)
{
    switch (mode) {
      case SchedMode::LayerOrder:
        return "layer-order";
      case SchedMode::LayerBatched:
        return "layer-batched";
      case SchedMode::Greedy:
        return "greedy";
      case SchedMode::Dp:
        return "dp";
      case SchedMode::Dtt:
        return "dtt";
    }
    return "unknown";
}

ScheduleIndex::ScheduleIndex(const Schedule &schedule,
                             std::size_t atom_count)
    : _round(atom_count, -1), _engine(atom_count, -1)
{
    for (std::size_t t = 0; t < schedule.rounds.size(); ++t) {
        for (const Placement &p : schedule.rounds[t].placements) {
            const auto i = static_cast<std::size_t>(p.atom);
            adAssert(i < atom_count, "placement atom out of range");
            adAssert(_round[i] == -1, "atom scheduled twice: ", p.atom);
            _round[i] = static_cast<int>(t);
            _engine[i] = p.engine;
        }
    }
}

int
ScheduleIndex::roundOf(AtomId atom) const
{
    const auto i = static_cast<std::size_t>(atom);
    adAssert(i < _round.size(), "atom id out of range");
    return _round[i];
}

int
ScheduleIndex::engineOf(AtomId atom) const
{
    const auto i = static_cast<std::size_t>(atom);
    adAssert(i < _engine.size(), "atom id out of range");
    return _engine[i];
}

} // namespace ad::core
