#include "shape_catalog.hh"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.hh"

namespace ad::core {

using engine::DataflowKind;
using graph::OpType;

ShapeCatalog::ShapeCatalog(const graph::Graph &graph,
                           const engine::CostModel &model,
                           const ShapeCatalogOptions &options,
                           const engine::CostModel *exact)
    : _graph(&graph), _model(&model), _exactModel(exact),
      _options(options)
{
    _catalog.resize(graph.size());
    // Candidate enumeration is independent per layer: buildLayer only
    // reads the (pure) cost model and writes its own _catalog slot.
    std::vector<const graph::Layer *> todo;
    todo.reserve(graph.size());
    for (const graph::Layer &layer : graph.layers()) {
        if (layer.type == OpType::Input || layer.type == OpType::Concat)
            continue;
        todo.push_back(&layer);
    }
    util::ThreadPool::global().parallelFor(
        todo.size(), [&](std::size_t i) { buildLayer(*todo[i]); });
    if (_exactModel) {
        _exactCycles.resize(_catalog.size());
        for (std::size_t l = 0; l < _catalog.size(); ++l)
            _exactCycles[l].assign(_catalog[l].size(), 0);
    }
}

engine::AtomWorkload
ShapeCatalog::workloadFor(const graph::Layer &layer,
                          const TileShape &shape)
{
    engine::AtomWorkload atom;
    atom.type = layer.type;
    atom.h = shape.h;
    atom.w = shape.w;
    atom.co = shape.c;
    atom.ci = layer.in.c;
    if (layer.type == OpType::DepthwiseConv ||
        layer.type == OpType::Pool || layer.type == OpType::Eltwise) {
        atom.ci = shape.c;
    }
    atom.window = layer.window;
    return atom;
}

Cycles
ShapeCatalog::exactCycles(graph::LayerId layer, std::size_t idx) const
{
    const auto &cands = candidatesFor(layer);
    adAssert(idx < cands.size(), "candidate index out of range");
    if (!_exactModel)
        return cands[idx].cycles;
    Cycles &memo = _exactCycles[static_cast<std::size_t>(layer)][idx];
    if (memo == 0) {
        memo = _exactModel->cycles(
            workloadFor(_graph->layer(layer), cands[idx].shape));
    }
    return memo;
}

std::vector<int>
ShapeCatalog::splitSizes(int dim, int quantum) const
{
    // Tile sizes produced by splitting `dim` into 1..maxSplits chunks,
    // rounded up to `quantum` (the PE-array multiple constraint of
    // Sec. IV-A). Always includes the whole dimension.
    std::vector<int> sizes;
    for (int splits = 1; splits <= _options.maxSplitsPerDim; ++splits) {
        int tile = ceilDiv(dim, splits);
        if (quantum > 1)
            tile = static_cast<int>(
                roundUp<std::int64_t>(tile, quantum));
        tile = std::min(tile, dim);
        sizes.push_back(tile);
    }
    // A quantum-sized tile is the finest meaningful granularity.
    if (quantum > 1 && quantum < dim)
        sizes.push_back(quantum);
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    return sizes;
}

void
ShapeCatalog::buildLayer(const graph::Layer &layer)
{
    const engine::EngineConfig &cfg = _model->config();
    const bool mac = layer.onPeArray();
    const DataflowKind kind = _model->dataflow();

    // Quantisation of each tile dimension follows the spatial unrolling:
    // KC-P pins output channels to PEy multiples; YX-P pins the spatial
    // dims to the array instead (Sec. IV-A / Sec. VI discussion).
    int qh = 1, qw = 1, qc = 1;
    if (mac) {
        if (kind == DataflowKind::KcPartition) {
            qc = cfg.peCols;
        } else if (kind == DataflowKind::YxPartition &&
                   layer.type != OpType::FullyConnected) {
            qh = cfg.peRows;
            qw = cfg.peCols;
        } else if (kind == DataflowKind::Flexible) {
            // Either mapping may win per atom; keep channel alignment
            // (the KC constraint) and let the cost model choose.
            qc = cfg.peCols;
        }
    }

    const std::vector<int> hs = splitSizes(layer.out.h, qh);
    const std::vector<int> ws = splitSizes(layer.out.w, qw);
    const std::vector<int> chans = splitSizes(layer.out.c, qc);

    auto &cands = _catalog[static_cast<std::size_t>(layer.id)];
    const Bytes capacity = cfg.bufferBytes;
    // Streaming working sets cannot exceed what the buffer can double-
    // buffer: scale them down for small-buffer configurations.
    const Bytes ws_bytes =
        std::min(_options.weightWorkingSet, capacity / 4);

    // Pass 1 holds the full input tile resident; pass 2 (only tried
    // when pass 1 yields nothing, i.e. very small buffers) streams the
    // ifmap in working-set chunks the way weights already stream.
    for (int pass = 0; pass < 2 && cands.empty(); ++pass) {
    for (int th : hs) {
        for (int tw : ws) {
            for (int tc : chans) {
                const engine::AtomWorkload atom =
                    workloadFor(layer, {th, tw, tc});

                const Bytes weights =
                    atom.weightBytes(_options.bytesPerElem);
                const Bytes ifmap =
                    atom.ifmapBytes(_options.bytesPerElem);
                const Bytes ifmap_need =
                    pass == 0 ? ifmap : std::min(ifmap, ws_bytes);
                const Bytes footprint =
                    ifmap_need + atom.ofmapBytes(_options.bytesPerElem) +
                    std::min(weights, ws_bytes);

                ShapeCandidate cand;
                cand.shape = {th, tw, tc};
                cand.cycles = _model->cycles(atom);
                cand.utilization = _model->utilization(atom);
                cand.footprint = footprint;
                const Bytes spatial_tiles =
                    static_cast<Bytes>(ceilDiv(layer.out.h, th)) *
                    static_cast<Bytes>(ceilDiv(layer.out.w, tw));
                const Bytes total_tiles =
                    spatial_tiles *
                    static_cast<Bytes>(ceilDiv(layer.out.c, tc));
                cand.weightReplBytes = weights * (spatial_tiles - 1);
                cand.weightTraffic =
                    weights <= _options.residentWeightCap
                        ? cand.weightReplBytes
                        : weights * total_tiles;
                if (footprint <= capacity)
                    cands.push_back(cand);
            }
        }
    }
    }

    if (cands.empty()) {
        // Nothing fits the buffer (huge layer): fall back to the finest
        // granularity and let the simulator charge the spills.
        const TileShape finest{std::min(layer.out.h, qh),
                               std::min(layer.out.w, qw),
                               std::min(layer.out.c, std::max(qc, 1))};
        const engine::AtomWorkload atom = workloadFor(layer, finest);
        ShapeCandidate cand;
        cand.shape = finest;
        cand.cycles = _model->cycles(atom);
        cand.utilization = _model->utilization(atom);
        cand.footprint = atom.ifmapBytes(_options.bytesPerElem) +
                         atom.ofmapBytes(_options.bytesPerElem);
        cands.push_back(cand);
    }

    std::sort(cands.begin(), cands.end(),
              [](const ShapeCandidate &a, const ShapeCandidate &b) {
                  return a.cycles < b.cycles;
              });
    // Deduplicate identical shapes that costing mapped to equal cycles.
    cands.erase(std::unique(cands.begin(), cands.end(),
                            [](const ShapeCandidate &a,
                               const ShapeCandidate &b) {
                                return a.shape == b.shape;
                            }),
                cands.end());
}

const std::vector<ShapeCandidate> &
ShapeCatalog::candidatesFor(graph::LayerId layer) const
{
    adAssert(layer >= 0 &&
                 static_cast<std::size_t>(layer) < _catalog.size(),
             "layer id out of range");
    return _catalog[static_cast<std::size_t>(layer)];
}

std::size_t
ShapeCatalog::nearestIndex(graph::LayerId layer,
                           double target_cycles) const
{
    const auto &cands = candidatesFor(layer);
    adAssert(!cands.empty(), "no candidates for layer ", layer);
    auto it = std::lower_bound(
        cands.begin(), cands.end(), target_cycles,
        [](const ShapeCandidate &c, double t) {
            return static_cast<double>(c.cycles) < t;
        });
    std::size_t best;
    if (it == cands.end()) {
        best = cands.size() - 1;
    } else if (it == cands.begin()) {
        best = 0;
    } else {
        const auto hi = static_cast<std::size_t>(it - cands.begin());
        const double above = static_cast<double>(cands[hi].cycles);
        const double below = static_cast<double>(cands[hi - 1].cycles);
        best = (above - target_cycles) < (target_cycles - below)
                   ? hi
                   : hi - 1;
    }

    // Among cycle-equivalent candidates (within 10% of the pick), prefer
    // the one whose filter slices replicate across the fewest engines —
    // weight distribution is pure NoC/DRAM overhead.
    const double pick_cycles = static_cast<double>(cands[best].cycles);
    const double lo = pick_cycles * 0.9;
    const double hi_bound = pick_cycles * 1.1;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const auto c = static_cast<double>(cands[i].cycles);
        if (c < lo || c > hi_bound)
            continue;
        if (cands[i].weightTraffic < cands[best].weightTraffic ||
            (cands[i].weightTraffic == cands[best].weightTraffic &&
             cands[i].utilization > cands[best].utilization)) {
            best = i;
        }
    }
    return best;
}

const ShapeCandidate &
ShapeCatalog::nearest(graph::LayerId layer, double target_cycles) const
{
    return candidatesFor(layer)[nearestIndex(layer, target_cycles)];
}

std::vector<TileShape>
ShapeCatalog::shapesFromIndices(
    const std::vector<std::size_t> &indices) const
{
    std::vector<TileShape> shapes(_graph->size(), TileShape{1, 1, 1});
    for (const graph::Layer &layer : _graph->layers()) {
        const auto lid = static_cast<std::size_t>(layer.id);
        const auto &cands = _catalog[lid];
        if (cands.empty())
            continue;
        adAssert(lid < indices.size(), "index vector too short");
        adAssert(indices[lid] < cands.size(),
                 "candidate index out of range");
        shapes[lid] = cands[indices[lid]].shape;
    }
    return shapes;
}

std::vector<TileShape>
ShapeCatalog::defaultShapes() const
{
    std::vector<TileShape> shapes(_graph->size(), TileShape{1, 1, 1});
    for (const graph::Layer &layer : _graph->layers()) {
        const auto lid = static_cast<std::size_t>(layer.id);
        const auto &cands = _catalog[lid];
        if (cands.empty())
            continue;
        const auto best = std::max_element(
            cands.begin(), cands.end(),
            [](const ShapeCandidate &a, const ShapeCandidate &b) {
                if (a.utilization != b.utilization)
                    return a.utilization < b.utilization;
                return a.cycles > b.cycles; // prefer smaller atoms on tie
            });
        shapes[lid] = best->shape;
    }
    return shapes;
}

} // namespace ad::core
