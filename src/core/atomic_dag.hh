#pragma once

/**
 * @file
 * The atomic DAG: atoms of every (layer, batch sample) pair plus the
 * atom-level data dependencies derived from receptive fields (Sec. III,
 * Fig. 6(b)).
 *
 * Concat layers are elided during construction — a consumer reading a
 * channel range of a Concat output depends directly on the branch layer
 * that produced that range, so concatenation never serializes the graph.
 * All samples of a batch are gathered into one unified DAG (#Batch
 * identical sub-DAGs), enabling batch-level parallelism (Sec. IV-B).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "core/atom.hh"
#include "graph/graph.hh"

namespace ad::core {

/** Construction options for the atomic DAG. */
struct AtomicDagOptions
{
    int batch = 1;       ///< number of input samples gathered into the DAG
    int bytesPerElem = 1;
};

/** Immutable atom-level dependency graph. */
class AtomicDag
{
  public:
    /**
     * Partition @p graph into atoms using per-layer @p shapes (indexed by
     * LayerId; Input/Concat entries are ignored) and derive atom-level
     * dependencies. The DAG keeps its own copy of the graph, so
     * temporaries are safe to pass.
     */
    AtomicDag(graph::Graph graph, const std::vector<TileShape> &shapes,
              const AtomicDagOptions &options = {});

    /** Source computation graph. */
    const graph::Graph &graph() const { return _graph; }

    /** Number of atoms. */
    std::size_t size() const { return _atoms.size(); }

    /** Atom by id. */
    const Atom &atom(AtomId id) const;

    /** All atoms, id-ordered. */
    const std::vector<Atom> &atoms() const { return _atoms; }

    /** Producer atoms @p id depends on (within the same sample). */
    std::vector<AtomId> deps(AtomId id) const;

    /** Consumer atoms that depend on @p id. */
    std::vector<AtomId> consumers(AtomId id) const;

    /** Allocation-free view of deps(id). */
    std::span<const AtomId> depsSpan(AtomId id) const;

    /** Allocation-free view of consumers(id). */
    std::span<const AtomId> consumersSpan(AtomId id) const;

    /**
     * Bytes @p id actually reads from each producer (the receptive-field
     * overlap, not the producer's whole tile); aligned with depsSpan.
     */
    std::span<const Bytes> depBytesSpan(AtomId id) const;

    /** Number of producer atoms of @p id. */
    int depCount(AtomId id) const;

    /** True when @p id reads the graph input (data arrives from HBM). */
    bool readsExternalInput(AtomId id) const;

    /** Engine workload (tile dims + operator params) of @p id. */
    engine::AtomWorkload workload(AtomId id) const;

    /** Output bytes of @p id. */
    Bytes ofmapBytes(AtomId id) const;

    /** Weight bytes needed resident to execute @p id. */
    Bytes weightBytes(AtomId id) const;

    /** Batch size this DAG was built with. */
    int batch() const { return _options.batch; }

    /** Element width this DAG was built with (core::planIo needs the
     * full constructor inputs to re-create the DAG on hydration). */
    int bytesPerElem() const { return _options.bytesPerElem; }

    /** Atoms of @p layer in @p sample (contiguous id range). */
    std::pair<AtomId, AtomId> layerAtoms(graph::LayerId layer,
                                         int sample) const;

    /** Number of atoms per sample of @p layer (0 for elided layers). */
    int atomsPerSample(graph::LayerId layer) const;

    /** Longest-path depth of each atom's layer (for priority rule 2). */
    int layerDepth(graph::LayerId layer) const;

    /** Tile shape used for @p layer. */
    const TileShape &shapeOf(graph::LayerId layer) const;

    /** Total atoms whose layer runs on the PE array. */
    std::size_t macAtomCount() const;

    /**
     * Deterministic estimate of the heap footprint of this DAG (atoms,
     * CSR edge arrays, per-layer tables). Computed from element counts,
     * never from allocator state, so two identical DAGs always report
     * the same size — the accounting unit of serve::PlanCache's byte
     * budget.
     */
    Bytes memoryBytes() const;

  private:
    struct SourceSlice
    {
        graph::LayerId producer = graph::kNoLayer; ///< kNoLayer == input
        int chanBegin = 0; ///< first consumer-input channel of this slice
        int chanCount = 0;
    };

    void buildAtoms();
    void buildEdges();
    std::vector<SourceSlice> resolveSources(graph::LayerId layer) const;
    void collectProducerAtoms(
        graph::LayerId producer, int sample, int h0, int h1, int w0,
        int w1, int c0, int c1,
        std::vector<std::pair<AtomId, Bytes>> &out) const;

    graph::Graph _graph;
    AtomicDagOptions _options;
    std::vector<TileShape> _shapes;
    std::vector<int> _depths;

    std::vector<Atom> _atoms;
    /// Per (layer, sample): first AtomId; kNoAtom when the layer is elided.
    std::vector<std::vector<AtomId>> _layerBase;
    std::vector<int> _atomsPerSample;

    // CSR edge storage.
    std::vector<std::int64_t> _depOffsets;
    std::vector<AtomId> _depEdges;
    std::vector<Bytes> _depEdgeBytes;
    std::vector<std::int64_t> _consOffsets;
    std::vector<AtomId> _consEdges;
    std::vector<bool> _readsInput;
};

} // namespace ad::core
