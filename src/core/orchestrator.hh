#pragma once

/**
 * @file
 * The top-level atomic-dataflow optimization framework (Sec. III,
 * Fig. 4): atom generation -> atomic DAG -> DAG scheduling -> atom-engine
 * mapping -> system evaluation, with each stage independently selectable
 * for the per-stage ablation of Fig. 10.
 */

#include <memory>

#include "core/atom_generator.hh"
#include "core/atomic_dag.hh"
#include "core/mapper.hh"
#include "core/partition.hh"
#include "core/planner.hh"
#include "core/schedule.hh"
#include "core/scheduler.hh"
#include "sim/system.hh"

namespace ad::core {

/** Atom-generation stage selector. */
enum class AtomGenMode {
    EvenPartition, ///< naive N-way split, PE-geometry oblivious
    Sa,            ///< simulated-annealing search (Algorithm 1)
};

/** Orchestrator options; sub-option structs feed the stages. */
struct OrchestratorOptions
{
    int batch = 1;
    AtomGenMode atomGen = AtomGenMode::Sa;
    SaOptions sa;
    SchedulerOptions scheduler; ///< engines is overwritten from the system
    MapperOptions mapper;
    /** Disable all on-chip inter-Round reuse (Fig. 10 ablation): every
     * intermediate goes through HBM. */
    bool onChipReuse = true;

    /**
     * Surrogate-screened planning (DESIGN.md Sec. 17): the SA search
     * prices its shape catalog with the fitted
     * engine::SurrogateCostModel and re-scores accepted moves exactly,
     * and the plan-candidate sweep ranks scheduling candidates with an
     * analytic estimate, paying for full mapping + simulation only on
     * the top-ranked ones. The returned plan is always exact-model
     * scored and exact-simulated. Off reproduces the unscreened
     * pipeline bit-for-bit.
     */
    bool surrogate = true;

    /**
     * Upper bound on total atoms in one DAG. When the SA solution's
     * unified cycle is so small that the batch explodes past this
     * bound (tiny-layer networks), the per-layer shapes are snapped to
     * progressively larger cycle targets until the DAG fits — trading a
     * little load balance for a tractable schedule.
     */
    std::size_t maxAtoms = 250'000;
};

/** Everything one optimization run produces. */
struct OrchestratorResult
{
    GenerationResult generation;          ///< atom-generation outcome
    std::unique_ptr<AtomicDag> dag;       ///< owns atoms + dependencies
    Schedule schedule;                    ///< mapped rounds
    sim::ExecutionReport report;          ///< simulated execution
    double searchSeconds = 0.0;           ///< compile-time search cost
};

/**
 * Runs the full workflow on one workload. The input graph must outlive
 * the returned result (the AtomicDag references it).
 */
class Orchestrator : public Planner
{
  public:
    /**
     * Create an orchestrator planning for @p view of the machine
     * @p system (the default view is the whole mesh). Every stage —
     * atom generation, scheduling, mapping, evaluation — operates on
     * the view-local machine viewSystem(system, view); only trace
     * track naming sees the global mesh.
     */
    Orchestrator(const sim::SystemConfig &system,
                 OrchestratorOptions options = {},
                 sim::MeshView view = {});

    /** Planner interface. */
    std::string name() const override { return "AD"; }

    /** Optimize and evaluate @p graph end to end. With a non-null
     * @p ins, SA search telemetry and the winning schedule's execution
     * trace are recorded (losing candidates are evaluated untraced). */
    PlanResult plan(const graph::Graph &graph,
                    obs::Instrumentation *ins = nullptr) const override;

    /**
     * Deprecated shim (one release): the historic entry point, kept so
     * existing callers that want the GenerationResult keep compiling.
     * Intentionally name-hides Planner::run — new code should use
     * plan()/run() from the Planner interface.
     */
    OrchestratorResult
    run(const graph::Graph &graph) const
    {
        return runImpl(graph, nullptr);
    }

    /**
     * Build the mapped schedule for a pre-built @p dag (skips atom
     * generation; used by ablations and baselines).
     */
    Schedule buildSchedule(const AtomicDag &dag) const;

    /**
     * Run only the mapping pass (Sec. IV-C) over externally-produced
     * @p rounds: engines assigned by AtomEngineMapper against the same
     * residency model the simulator replays, weights and outputs
     * installed round-by-round. The Round structure is preserved
     * verbatim; @p mode records the scheduler that produced it.
     * Baselines with their own Round search (DttPlanner) reuse the
     * mapper this way instead of duplicating it.
     */
    Schedule mapRounds(const AtomicDag &dag, const RoundList &rounds,
                       SchedMode mode) const;

    /** View-local system configuration all stages plan on. */
    const sim::SystemConfig &system() const { return _system; }

    /** Resolved executor view the plan targets. */
    const sim::MeshView &view() const { return _view; }

    /** Options in use. */
    const OrchestratorOptions &options() const { return _options; }

  private:
    OrchestratorResult runImpl(const graph::Graph &graph,
                               obs::Instrumentation *ins) const;

    sim::SystemConfig _base;  ///< the machine hosting the view
    sim::MeshView _view;      ///< resolved against _base
    sim::SystemConfig _system; ///< viewSystem(_base, _view)
    OrchestratorOptions _options;
};

} // namespace ad::core
