#include "scheduler.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ad::core {

namespace {

/** Combination-generation rule, one per Options entry (Algorithm 2
 * line 8). Each rule orders the four priority levels differently. */
enum class ComboRule { Standard, DepthFirst, FusionFirst, Balance };

constexpr ComboRule kRules[] = {ComboRule::Standard, ComboRule::DepthFirst,
                                ComboRule::FusionFirst,
                                ComboRule::Balance};

/**
 * Mutable scheduling state over the un-traversed sub-DAG G', supporting
 * apply/undo so the bounded DP recursion explores without copying.
 */
class SchedState
{
  public:
    SchedState(const AtomicDag &dag, const std::vector<Cycles> &cycles,
               const SchedulerOptions &options)
        : _dag(&dag), _cycles(&cycles), _options(&options)
    {
        const auto &graph = dag.graph();
        _layers = static_cast<int>(graph.size());
        _batch = dag.batch();
        const std::size_t keys =
            static_cast<std::size_t>(_layers) * _batch;

        _readyQ.resize(keys);
        _scheduledPerKey.assign(keys, 0);
        _totalPerKey.assign(keys, 0);
        _remDeps.assign(dag.size(), 0);
        _producedRound.assign(dag.size(), -1);
        _remainingPerSample.assign(static_cast<std::size_t>(_batch), 0);

        int max_depth = 0;
        for (const graph::Layer &l : graph.layers())
            max_depth = std::max(max_depth, dag.layerDepth(l.id));
        _depthActive.assign(static_cast<std::size_t>(max_depth) + 1, 0);

        for (const Atom &a : dag.atoms()) {
            _remDeps[static_cast<std::size_t>(a.id)] =
                dag.depCount(a.id);
            ++_totalPerKey[keyOf(a)];
            ++_remainingPerSample[static_cast<std::size_t>(a.batch)];
            _remainingCycles += static_cast<double>(
                cycles[static_cast<std::size_t>(a.id)]);
            if (_remDeps[static_cast<std::size_t>(a.id)] == 0)
                pushReady(a.id);
        }
        _remainingAtoms = dag.size();
    }

    bool done() const { return _remainingAtoms == 0; }

    int round() const { return _round; }

    /** Remaining-compute roll-out estimate (perfect packing). */
    double
    rollout() const
    {
        return _remainingCycles / _options->engines;
    }

    /** Surrogate cost of running @p combo this Round: compute makespan
     * plus HBM and NoC transfer estimates. */
    double
    comboCost(const std::vector<AtomId> &combo) const
    {
        Cycles makespan = 0;
        double hbm_bytes = 0.0;
        double noc_bytes = 0.0;
        // (layer, sample) keys whose weight fetch this combo already
        // pays: a combo starting N atoms of one key fetches the layer's
        // weights once, not N times.
        std::vector<std::int64_t> started;
        for (AtomId a : combo) {
            makespan = std::max(
                makespan, (*_cycles)[static_cast<std::size_t>(a)]);
            const auto dep_ids = _dag->depsSpan(a);
            const auto dep_bytes = _dag->depBytesSpan(a);
            for (std::size_t di = 0; di < dep_ids.size(); ++di) {
                const int produced = _producedRound[static_cast<
                    std::size_t>(dep_ids[di])];
                const auto bytes = static_cast<double>(dep_bytes[di]);
                if (produced >= 0 &&
                    produced + _options->residencyWindow >= _round) {
                    noc_bytes += bytes;
                } else {
                    hbm_bytes += bytes;
                }
            }
            // Weight first-touch for a layer not yet started this
            // sample, charged once per key within the combo.
            const Atom &atom = _dag->atom(a);
            const std::int64_t key = keyOf(atom);
            if (_scheduledPerKey[static_cast<std::size_t>(key)] == 0 &&
                std::find(started.begin(), started.end(), key) ==
                    started.end()) {
                started.push_back(key);
                hbm_bytes +=
                    static_cast<double>(_dag->weightBytes(a));
            }
            if (_dag->readsExternalInput(a)) {
                hbm_bytes += static_cast<double>(
                    _dag->workload(a).ifmapBytes());
            }
        }
        return static_cast<double>(makespan) +
               hbm_bytes / _options->hbmBytesPerCycle +
               noc_bytes / _options->nocBytesPerCycle;
    }

    /** Generate one combination of at most @p n atoms under @p rule. */
    std::vector<AtomId>
    select(ComboRule rule, int n) const
    {
        if (rule == ComboRule::Balance)
            return selectBalanced(n);

        // Level order per rule. Levels: 0 = remaining atoms of started
        // layers (rule 1); 1 = same-depth layers of the focus sample
        // (rule 2); 2 = other ready layers of the focus sample (rule 3);
        // 3 = later samples (rule 4).
        int order[4] = {0, 1, 2, 3};
        if (rule == ComboRule::DepthFirst) {
            order[0] = 1;
            order[1] = 0;
        } else if (rule == ComboRule::FusionFirst) {
            order[0] = 2;
            order[1] = 0;
            order[2] = 1;
        }

        std::vector<AtomId> combo;
        combo.reserve(static_cast<std::size_t>(n));
        for (int oi = 0; oi < 4 && static_cast<int>(combo.size()) < n;
             ++oi) {
            collectLevel(order[oi], n, combo);
        }
        return combo;
    }

    /**
     * Atoms in strict key order. @p layer_major false gives
     * (sample, layer) order — the no-rules ablation; true gives
     * (layer, sample) order so every sample of a batch shares a layer's
     * weights before the schedule moves deeper.
     */
    std::vector<AtomId>
    selectLayerOrder(int n, bool layer_major = false) const
    {
        std::vector<std::int64_t> keys(_activeKeys.begin(),
                                       _activeKeys.end());
        if (layer_major) {
            std::sort(keys.begin(), keys.end(),
                      [this](std::int64_t a, std::int64_t b) {
                          const auto la = layerOfKey(a);
                          const auto lb = layerOfKey(b);
                          if (la != lb)
                              return la < lb;
                          return sampleOfKey(a) < sampleOfKey(b);
                      });
        }
        std::vector<AtomId> combo;
        combo.reserve(static_cast<std::size_t>(n));
        for (std::int64_t key : keys) {
            const auto &q = _readyQ[static_cast<std::size_t>(key)];
            for (auto it = q.rbegin();
                 it != q.rend() && static_cast<int>(combo.size()) < n;
                 ++it) {
                combo.push_back(*it);
            }
            if (static_cast<int>(combo.size()) >= n)
                break;
        }
        return combo;
    }

    /** Undo log of one applied Round. */
    struct UndoLog
    {
        std::vector<AtomId> combo; ///< in apply order
        int oldFocus = 0;
    };

    /** Advance one Round executing @p combo. */
    UndoLog
    apply(const std::vector<AtomId> &combo)
    {
        UndoLog log;
        log.combo = combo;
        log.oldFocus = _focusSample;

        for (AtomId a : combo) {
            const Atom &atom = _dag->atom(a);
            const std::int64_t key = keyOf(atom);
            removeFromQueue(key, a);

            // Layer start/finish bookkeeping for priority levels.
            auto &sched = _scheduledPerKey[static_cast<std::size_t>(key)];
            if (sched == 0)
                bumpDepth(atom.layer, +1);
            ++sched;
            if (sched == _totalPerKey[static_cast<std::size_t>(key)])
                bumpDepth(atom.layer, -1);

            --_remainingPerSample[static_cast<std::size_t>(atom.batch)];
            _producedRound[static_cast<std::size_t>(a)] = _round;
            _remainingCycles -= static_cast<double>(
                (*_cycles)[static_cast<std::size_t>(a)]);
            --_remainingAtoms;

            for (AtomId c : _dag->consumersSpan(a)) {
                auto &rd = _remDeps[static_cast<std::size_t>(c)];
                adAssert(rd > 0, "dependency underflow");
                if (--rd == 0)
                    pushReady(c);
            }
        }
        while (_focusSample < _batch &&
               _remainingPerSample[static_cast<std::size_t>(
                   _focusSample)] == 0) {
            ++_focusSample;
        }
        ++_round;
        return log;
    }

    /** Reverse one apply(). Queue internal order is not preserved (it
     * does not affect feasibility, only heuristic tie-breaking). */
    void
    undo(const UndoLog &log)
    {
        --_round;
        _focusSample = log.oldFocus;

        for (auto it = log.combo.rbegin(); it != log.combo.rend(); ++it) {
            const AtomId a = *it;
            const Atom &atom = _dag->atom(a);
            const std::int64_t key = keyOf(atom);

            // Re-arm consumers: those this apply() made ready leave the
            // ready queues; every consumer regains the dependency.
            for (AtomId c : _dag->consumersSpan(a)) {
                auto &rd = _remDeps[static_cast<std::size_t>(c)];
                if (rd == 0)
                    removeFromQueue(keyOf(_dag->atom(c)), c);
                ++rd;
            }

            auto &sched = _scheduledPerKey[static_cast<std::size_t>(key)];
            if (sched == _totalPerKey[static_cast<std::size_t>(key)])
                bumpDepth(atom.layer, +1);
            --sched;
            if (sched == 0)
                bumpDepth(atom.layer, -1);

            ++_remainingPerSample[static_cast<std::size_t>(atom.batch)];
            _producedRound[static_cast<std::size_t>(a)] = -1;
            _remainingCycles += static_cast<double>(
                (*_cycles)[static_cast<std::size_t>(a)]);
            ++_remainingAtoms;

            pushReady(a);
        }
    }

  private:
    std::int64_t
    keyOf(const Atom &a) const
    {
        return static_cast<std::int64_t>(a.batch) * _layers + a.layer;
    }

    int sampleOfKey(std::int64_t key) const
    {
        return static_cast<int>(key / _layers);
    }

    graph::LayerId layerOfKey(std::int64_t key) const
    {
        return static_cast<graph::LayerId>(key % _layers);
    }

    void
    pushReady(AtomId a)
    {
        const std::int64_t key = keyOf(_dag->atom(a));
        auto &q = _readyQ[static_cast<std::size_t>(key)];
        if (q.empty())
            _activeKeys.insert(key);
        q.push_back(a);
    }

    void
    removeFromQueue(std::int64_t key, AtomId a)
    {
        auto &q = _readyQ[static_cast<std::size_t>(key)];
        if (!q.empty() && q.back() == a) {
            q.pop_back();
        } else {
            auto it = std::find(q.begin(), q.end(), a);
            adAssert(it != q.end(), "atom not in ready queue");
            std::iter_swap(it, q.end() - 1);
            q.pop_back();
        }
        if (q.empty())
            _activeKeys.erase(key);
    }

    void
    bumpDepth(graph::LayerId layer, int delta)
    {
        _depthActive[static_cast<std::size_t>(
            _dag->layerDepth(layer))] += delta;
    }

    /** Priority level of an active key under the current state. */
    int
    levelOf(std::int64_t key) const
    {
        const int sample = sampleOfKey(key);
        if (sample > _focusSample)
            return 3;
        const graph::LayerId layer = layerOfKey(key);
        const auto k = static_cast<std::size_t>(key);
        if (_scheduledPerKey[k] > 0 &&
            _scheduledPerKey[k] < _totalPerKey[k]) {
            return 0;
        }
        const int depth = _dag->layerDepth(layer);
        // Started-layer depth match, excluding this key's own activity.
        if (_depthActive[static_cast<std::size_t>(depth)] > 0)
            return 1;
        return 2;
    }

    /** Append ready atoms of priority level @p want (up to @p n total). */
    void
    collectLevel(int want, int n, std::vector<AtomId> &combo) const
    {
        for (std::int64_t key : _activeKeys) {
            if (static_cast<int>(combo.size()) >= n)
                return;
            if (levelOf(key) != want)
                continue;
            const auto &q = _readyQ[static_cast<std::size_t>(key)];
            for (auto it = q.rbegin();
                 it != q.rend() && static_cast<int>(combo.size()) < n;
                 ++it) {
                combo.push_back(*it);
            }
        }
    }

    /** Pick N atoms with the most-equal cycles out of the top-2N
     * priority candidates (minimizes intra-Round load unbalance). */
    std::vector<AtomId>
    selectBalanced(int n) const
    {
        std::vector<AtomId> pool = select(ComboRule::Standard, 2 * n);
        if (static_cast<int>(pool.size()) <= n)
            return pool;
        std::sort(pool.begin(), pool.end(), [this](AtomId a, AtomId b) {
            return (*_cycles)[static_cast<std::size_t>(a)] <
                   (*_cycles)[static_cast<std::size_t>(b)];
        });
        std::size_t best_start = 0;
        Cycles best_spread = std::numeric_limits<Cycles>::max();
        for (std::size_t s = 0; s + n <= pool.size(); ++s) {
            const Cycles spread =
                (*_cycles)[static_cast<std::size_t>(pool[s + n - 1])] -
                (*_cycles)[static_cast<std::size_t>(pool[s])];
            if (spread < best_spread) {
                best_spread = spread;
                best_start = s;
            }
        }
        return {pool.begin() + static_cast<std::ptrdiff_t>(best_start),
                pool.begin() +
                    static_cast<std::ptrdiff_t>(best_start + n)};
    }

    const AtomicDag *_dag;
    const std::vector<Cycles> *_cycles;
    const SchedulerOptions *_options;

    int _layers = 0;
    int _batch = 1;
    int _round = 0;
    int _focusSample = 0;
    std::size_t _remainingAtoms = 0;
    double _remainingCycles = 0.0;

    std::vector<std::vector<AtomId>> _readyQ; ///< per (sample, layer)
    std::set<std::int64_t> _activeKeys;       ///< keys with ready atoms
    std::vector<int> _scheduledPerKey;
    std::vector<int> _totalPerKey;
    std::vector<int> _remDeps;
    std::vector<int> _producedRound;
    std::vector<int> _remainingPerSample;
    std::vector<int> _depthActive;
};

/** Bounded DP over combination Options (Algorithm 2 line 9-16). */
double
dpSearch(SchedState &state, int depth, int engines,
         std::vector<AtomId> *chosen)
{
    if (state.done())
        return 0.0;

    double best = std::numeric_limits<double>::infinity();
    std::vector<std::vector<AtomId>> seen;

    for (ComboRule rule : kRules) {
        std::vector<AtomId> combo = state.select(rule, engines);
        adAssert(!combo.empty(), "scheduler deadlock: no ready atoms");

        std::vector<AtomId> signature = combo;
        std::sort(signature.begin(), signature.end());
        if (std::find(seen.begin(), seen.end(), signature) != seen.end())
            continue;
        seen.push_back(std::move(signature));

        double cost = state.comboCost(combo);
        auto log = state.apply(combo);
        if (depth > 0 && !state.done()) {
            cost += dpSearch(state, depth - 1, engines, nullptr);
        } else {
            cost += state.rollout();
        }
        state.undo(log);

        if (cost < best) {
            best = cost;
            if (chosen)
                *chosen = std::move(combo);
        }
    }
    return best;
}

} // namespace

DpScheduler::DpScheduler(const AtomicDag &dag,
                         const engine::CostModel &model,
                         SchedulerOptions options)
    : _dag(&dag), _options(options), _effectiveMode(options.mode)
{
    if (_options.engines <= 0)
        fatal("scheduler requires a positive engine count");
    if (_options.mode == SchedMode::Dp &&
        dag.size() > _options.dpAtomLimit) {
        // The lookahead recursion cost dominates any gain at this size.
        _effectiveMode = SchedMode::Greedy;
        warn("DpScheduler: DAG of ", dag.size(),
             " atoms exceeds dpAtomLimit=", _options.dpAtomLimit,
             "; falling back to greedy priority rules");
    }
    // Atom costing is independent per atom (the cost model is pure), so
    // the precompute fans out; each index writes only its own slot.
    _cycles.resize(dag.size());
    util::ThreadPool::global().parallelFor(
        dag.size(), [&](std::size_t i) {
            _cycles[i] = model.cycles(
                dag.workload(static_cast<AtomId>(i)));
        });
}

Cycles
DpScheduler::atomCycles(AtomId atom) const
{
    const auto i = static_cast<std::size_t>(atom);
    adAssert(i < _cycles.size(), "atom id out of range");
    return _cycles[i];
}

double
DpScheduler::estimateCost(const RoundList &rounds) const
{
    // Replays SchedState::comboCost's accounting over a fixed Round
    // sequence: per-Round makespan, weight first-touch once per
    // (layer, sample) key, dependency bytes over the NoC when the
    // producer is within the residency window (HBM otherwise), and
    // external-input fetches.
    const AtomicDag &dag = *_dag;
    const auto layers =
        static_cast<std::int64_t>(dag.graph().size());
    std::vector<int> produced_round(dag.size(), -1);
    std::vector<char> started(
        static_cast<std::size_t>(layers) *
            static_cast<std::size_t>(dag.batch()),
        0);

    double cost = 0.0;
    for (std::size_t t = 0; t < rounds.size(); ++t) {
        const int round = static_cast<int>(t);
        Cycles makespan = 0;
        double hbm_bytes = 0.0;
        double noc_bytes = 0.0;
        for (AtomId a : rounds[t]) {
            makespan = std::max(
                makespan, _cycles[static_cast<std::size_t>(a)]);
            const auto dep_ids = dag.depsSpan(a);
            const auto dep_bytes = dag.depBytesSpan(a);
            for (std::size_t di = 0; di < dep_ids.size(); ++di) {
                const int produced = produced_round[static_cast<
                    std::size_t>(dep_ids[di])];
                const auto bytes = static_cast<double>(dep_bytes[di]);
                if (produced >= 0 &&
                    produced + _options.residencyWindow >= round) {
                    noc_bytes += bytes;
                } else {
                    hbm_bytes += bytes;
                }
            }
            const Atom &atom = dag.atom(a);
            const auto key = static_cast<std::size_t>(
                static_cast<std::int64_t>(atom.batch) * layers +
                atom.layer);
            if (!started[key]) {
                started[key] = 1;
                hbm_bytes += static_cast<double>(dag.weightBytes(a));
            }
            if (dag.readsExternalInput(a)) {
                hbm_bytes +=
                    static_cast<double>(dag.workload(a).ifmapBytes());
            }
        }
        for (AtomId a : rounds[t])
            produced_round[static_cast<std::size_t>(a)] = round;
        cost += static_cast<double>(makespan) +
                hbm_bytes / _options.hbmBytesPerCycle +
                noc_bytes / _options.nocBytesPerCycle;
    }
    return cost;
}

RoundList
DpScheduler::schedule() const
{
    SchedState state(*_dag, _cycles, _options);
    RoundList rounds;

    const SchedMode mode = _effectiveMode;

    while (!state.done()) {
        std::vector<AtomId> combo;
        switch (mode) {
          case SchedMode::LayerOrder:
            combo = state.selectLayerOrder(_options.engines);
            break;
          case SchedMode::LayerBatched:
            combo = state.selectLayerOrder(_options.engines, true);
            break;
          case SchedMode::Greedy:
            combo = state.select(ComboRule::Standard, _options.engines);
            break;
          case SchedMode::Dp:
            dpSearch(state, _options.lookaheadDepth, _options.engines,
                     &combo);
            break;
          case SchedMode::Dtt:
            fatal("DpScheduler cannot run in Dtt mode — Dtt Rounds "
                  "come from core::dttSearch (see dtt_search.hh)");
        }
        adAssert(!combo.empty(), "scheduler deadlock: no ready atoms");
        state.apply(combo);
        rounds.push_back(std::move(combo));
    }
    return rounds;
}

} // namespace ad::core
