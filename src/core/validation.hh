#pragma once

/**
 * @file
 * Structural validation of mapped schedules. The simulator assumes these
 * invariants; the validator makes them checkable by tests, tools, and
 * users extending the scheduler.
 */

#include <string>
#include <vector>

#include "core/atomic_dag.hh"
#include "core/schedule.hh"

namespace ad::core {

/** Invariant class a schedule broke (one per checkable rule, so tests
 * can assert that a specific corruption produces a specific report). */
enum class ViolationKind {
    EmptyRound,         ///< a Round with no placements
    RoundOverCapacity,  ///< more atoms in a Round than engines
    InvalidEngine,      ///< engine id outside [0, engines)
    EngineDoubleBooked, ///< two atoms on one engine in one Round
    UnknownAtom,        ///< atom id outside the DAG
    AtomScheduledTwice, ///< one atom placed in two Rounds
    AtomNeverScheduled, ///< a DAG atom missing from the schedule
    DependencyOrder,    ///< a dependency not retired in an earlier Round
};

/** Short stable name of a violation kind. */
const char *violationKindName(ViolationKind kind);

/** One violated invariant. */
struct ScheduleViolation
{
    ViolationKind kind; ///< which rule was broken
    std::string what;   ///< human-readable description
};

/**
 * Check a mapped schedule against @p dag for @p engines engines:
 *  - every atom scheduled exactly once,
 *  - every dependency retired in a strictly earlier Round,
 *  - at most one atom per engine per Round, engine ids in range,
 *  - no empty Rounds.
 * Returns all violations found (empty means valid).
 */
std::vector<ScheduleViolation> validateSchedule(const AtomicDag &dag,
                                                const Schedule &schedule,
                                                int engines);

/** Convenience: true when validateSchedule() returns no violations. */
bool scheduleIsValid(const AtomicDag &dag, const Schedule &schedule,
                     int engines);

} // namespace ad::core
