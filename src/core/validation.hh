#pragma once

/**
 * @file
 * Structural validation of mapped schedules. The simulator assumes these
 * invariants; the validator makes them checkable by tests, tools, and
 * users extending the scheduler.
 */

#include <string>
#include <vector>

#include "core/atomic_dag.hh"
#include "core/schedule.hh"

namespace ad::core {

/** One violated invariant. */
struct ScheduleViolation
{
    std::string what; ///< human-readable description
};

/**
 * Check a mapped schedule against @p dag for @p engines engines:
 *  - every atom scheduled exactly once,
 *  - every dependency retired in a strictly earlier Round,
 *  - at most one atom per engine per Round, engine ids in range,
 *  - no empty Rounds.
 * Returns all violations found (empty means valid).
 */
std::vector<ScheduleViolation> validateSchedule(const AtomicDag &dag,
                                                const Schedule &schedule,
                                                int engines);

/** Convenience: true when validateSchedule() returns no violations. */
bool scheduleIsValid(const AtomicDag &dag, const Schedule &schedule,
                     int engines);

} // namespace ad::core
