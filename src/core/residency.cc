#include "residency.hh"

#include <algorithm>

namespace ad::core {

namespace {

/// Key bit marking a weight resident (vs an atom ofmap).
constexpr mem::ResidentKey kWeightTag = 1ULL << 62;

/// Bits reserved for the slice (low) field of a weight key.
constexpr int kSliceBits = 24;
constexpr mem::ResidentKey kSliceMask = (1ULL << kSliceBits) - 1;

} // namespace

mem::ResidentKey
ResidencyTracker::atomKey(AtomId atom)
{
    return static_cast<mem::ResidentKey>(atom);
}

mem::ResidentKey
ResidencyTracker::weightKey(graph::LayerId layer, int slice)
{
    // The slice occupies the low kSliceBits; an out-of-range or negative
    // slice OR-ed in unmasked would silently corrupt the layer field.
    adAssert(layer >= 0, "weight key layer negative: ", layer);
    adAssert(slice >= 0 &&
                 static_cast<mem::ResidentKey>(slice) <= kSliceMask,
             "weight key slice out of range: ", slice);
    return kWeightTag |
           (static_cast<mem::ResidentKey>(layer) << kSliceBits) |
           (static_cast<mem::ResidentKey>(slice) & kSliceMask);
}

graph::LayerId
ResidencyTracker::layerOfWeightKey(mem::ResidentKey key)
{
    return static_cast<graph::LayerId>((key & ~kWeightTag) >>
                                       kSliceBits);
}

ResidencyTracker::ResidencyTracker(const AtomicDag &dag, int engines,
                                   Bytes buffer_bytes,
                                   Bytes max_resident_weight)
    : _dag(&dag), _atomHome(dag.size(), -1), _useRounds(dag.size()),
      _maxResidentWeight(max_resident_weight)
{
    if (engines <= 0)
        fatal("engine count must be positive");
    _buffers.reserve(static_cast<std::size_t>(engines));
    for (int i = 0; i < engines; ++i)
        _buffers.emplace_back(buffer_bytes);
    _layerRounds.resize(dag.graph().size());
}

void
ResidencyTracker::attachSchedule(
    const std::vector<std::vector<AtomId>> &rounds)
{
    for (auto &v : _useRounds)
        v.clear();
    for (auto &v : _layerRounds)
        v.clear();

    std::vector<int> atom_round(_dag->size(), -1);
    for (std::size_t t = 0; t < rounds.size(); ++t) {
        for (AtomId a : rounds[t]) {
            atom_round[static_cast<std::size_t>(a)] =
                static_cast<int>(t);
            _layerRounds[static_cast<std::size_t>(
                             _dag->atom(a).layer)]
                .push_back(static_cast<int>(t));
        }
    }
    for (std::size_t a = 0; a < _dag->size(); ++a) {
        for (AtomId c : _dag->consumers(static_cast<AtomId>(a))) {
            const int r = atom_round[static_cast<std::size_t>(c)];
            if (r >= 0)
                _useRounds[a].push_back(r);
        }
        std::sort(_useRounds[a].begin(), _useRounds[a].end());
    }
    for (auto &v : _layerRounds) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
}

int
ResidencyTracker::nextUseAfter(AtomId atom, int now) const
{
    const auto &uses = _useRounds[static_cast<std::size_t>(atom)];
    auto it = std::upper_bound(uses.begin(), uses.end(), now);
    return it == uses.end() ? -1 : *it;
}

int
ResidencyTracker::nextLayerUseAfter(graph::LayerId layer, int now) const
{
    const auto &uses = _layerRounds[static_cast<std::size_t>(layer)];
    auto it = std::upper_bound(uses.begin(), uses.end(), now);
    return it == uses.end() ? -1 : *it;
}

SourceInfo
ResidencyTracker::locate(AtomId atom) const
{
    SourceInfo info;
    info.bytes = _dag->ofmapBytes(atom);
    const int home = _atomHome[static_cast<std::size_t>(atom)];
    if (home >= 0) {
        info.location = Location::OnChip;
        info.engine = home;
    }
    return info;
}

bool
ResidencyTracker::weightsResident(graph::LayerId layer, int slice,
                                  int engine) const
{
    return _buffers[static_cast<std::size_t>(engine)].contains(
        weightKey(layer, slice));
}

int
ResidencyTracker::weightHolder(graph::LayerId layer, int slice) const
{
    auto it = _sliceHolders.find(weightKey(layer, slice));
    if (it == _sliceHolders.end() || it->second.empty())
        return -1;
    return it->second.front();
}

Eviction
ResidencyTracker::evictOne(int engine, int now_round)
{
    // Algorithm 3: pick the resident with the largest invalid occupation
    // (t_next - t_0) * TensorSize; residents that are never used again
    // are released outright without write-back.
    auto &buffer = _buffers[static_cast<std::size_t>(engine)];

    Eviction best;
    double best_occupation = -1.0;
    bool best_is_weight = false;
    mem::ResidentKey best_key = 0;
    // Weight slices are only evicted when no fmap victim exists: they
    // are what priority rule 1 keeps on-chip, and spilling one costs a
    // full DRAM refetch for every later atom of the layer.
    Eviction weight_best;
    double weight_occupation = -1.0;
    mem::ResidentKey weight_key = 0;

    for (mem::ResidentKey key : buffer.residents()) {
        const Bytes size = buffer.sizeOf(key);
        int t_next;
        bool is_weight = (key & kWeightTag) != 0;
        AtomId atom = kNoAtom;
        graph::LayerId layer = graph::kNoLayer;
        // Look from (now_round - 1) so uses in the *current* Round are
        // visible: residents consumed this Round must never be evicted
        // out from under their readers.
        if (is_weight) {
            layer = layerOfWeightKey(key);
            t_next = nextLayerUseAfter(layer, now_round - 1);
        } else {
            atom = static_cast<AtomId>(key);
            t_next = nextUseAfter(atom, now_round - 1);
        }
        if (t_next == now_round)
            continue; // pinned: a reader in this Round depends on it

        if (t_next < 0) {
            // Dead data: release immediately, no write-back needed
            // (Algorithm 3 line 8-12). Weights always have a DRAM copy.
            buffer.release(key);
            if (!is_weight) {
                _atomHome[static_cast<std::size_t>(atom)] = -1;
                Eviction e;
                e.atom = atom;
                e.bytes = size;
                e.writeBack = false;
                return e;
            }
            forgetWeight(key, engine);
            Eviction e;
            e.atom = kNoAtom;
            e.bytes = size;
            e.writeBack = false;
            return e;
        }

        const double occupation =
            static_cast<double>(t_next - now_round) *
            static_cast<double>(size);
        if (is_weight) {
            if (occupation > weight_occupation) {
                weight_occupation = occupation;
                weight_best.atom = kNoAtom;
                weight_best.bytes = size;
                weight_key = key;
            }
        } else if (occupation > best_occupation) {
            best_occupation = occupation;
            best.atom = atom;
            best.bytes = size;
            best_is_weight = false;
            best_key = key;
        }
    }

    if (best_occupation < 0.0 && weight_occupation >= 0.0) {
        best = weight_best;
        best_is_weight = true;
        best_key = weight_key;
        best_occupation = weight_occupation;
    }
    if (best_occupation < 0.0)
        return best; // nothing evictable

    if (best_is_weight) {
        buffer.release(best_key);
        forgetWeight(best_key, engine);
        best.atom = kNoAtom;
        best.writeBack = false; // weights are read-only
    } else {
        buffer.release(atomKey(best.atom));
        _atomHome[static_cast<std::size_t>(best.atom)] = -1;
        best.writeBack = true; // live ofmap spills to DRAM
    }
    return best;
}

std::vector<Eviction>
ResidencyTracker::makeRoom(int engine, Bytes bytes, int now_round)
{
    std::vector<Eviction> evictions;
    auto &buffer = _buffers[static_cast<std::size_t>(engine)];
    while (buffer.free() < bytes) {
        Eviction e = evictOne(engine, now_round);
        if (e.bytes == 0)
            break; // nothing left to evict
        evictions.push_back(e);
    }
    return evictions;
}

std::vector<Eviction>
ResidencyTracker::installWeights(graph::LayerId layer, int slice,
                                 int engine, Bytes bytes, int now_round)
{
    auto &buffer = _buffers[static_cast<std::size_t>(engine)];
    if (bytes > buffer.capacity() || bytes > _maxResidentWeight)
        return {}; // streamed from DRAM, never resident
    auto evictions = makeRoom(engine, bytes, now_round);
    const mem::ResidentKey key = weightKey(layer, slice);
    if (buffer.tryAllocate(key, bytes)) {
        _sliceHolders[key].push_back(engine);
    } else {
        ++installFailures;
        // The consumer's buffer is too contended; park the slice on the
        // roomiest engine instead so future Rounds can copy it over the
        // NoC rather than refetching from DRAM.
        if (weightHolder(layer, slice) < 0) {
            int roomiest = -1;
            Bytes best_free = 0;
            for (int e = 0; e < engines(); ++e) {
                if (e == engine)
                    continue;
                const Bytes f =
                    _buffers[static_cast<std::size_t>(e)].free();
                if (roomiest < 0 || f > best_free) {
                    best_free = f;
                    roomiest = e;
                }
            }
            if (roomiest >= 0) {
                auto more = makeRoom(roomiest, bytes, now_round);
                evictions.insert(evictions.end(), more.begin(),
                                 more.end());
                if (_buffers[static_cast<std::size_t>(roomiest)]
                        .tryAllocate(key, bytes)) {
                    _sliceHolders[key].push_back(roomiest);
                }
            }
        }
    }
    return evictions;
}

std::vector<Eviction>
ResidencyTracker::produce(AtomId atom, int engine, int now_round)
{
    std::vector<Eviction> evictions;
    const Bytes bytes = _dag->ofmapBytes(atom);
    auto &buffer = _buffers[static_cast<std::size_t>(engine)];

    if (nextUseAfter(atom, now_round) < 0) {
        // Final output (or dead tile): written straight to DRAM.
        Eviction e;
        e.atom = atom;
        e.bytes = bytes;
        e.writeBack = true;
        evictions.push_back(e);
        return evictions;
    }
    if (bytes > buffer.capacity()) {
        // Cannot ever fit: spill immediately; consumers will re-fetch.
        Eviction e;
        e.atom = atom;
        e.bytes = bytes;
        e.writeBack = true;
        evictions.push_back(e);
        return evictions;
    }

    evictions = makeRoom(engine, bytes, now_round);
    if (buffer.tryAllocate(atomKey(atom), bytes)) {
        _atomHome[static_cast<std::size_t>(atom)] = engine;
    } else {
        Eviction e;
        e.atom = atom;
        e.bytes = bytes;
        e.writeBack = true;
        evictions.push_back(e);
    }
    return evictions;
}

void
ResidencyTracker::beginRound(int round)
{
    // Release residents whose last use has passed (no write-back).
    for (int engine = 0; engine < engines(); ++engine) {
        auto &buffer = _buffers[static_cast<std::size_t>(engine)];
        for (mem::ResidentKey key : buffer.residents()) {
            if (key & kWeightTag) {
                if (nextLayerUseAfter(layerOfWeightKey(key), round - 1) <
                    0) {
                    buffer.release(key);
                    forgetWeight(key, engine);
                }
            } else {
                const auto atom = static_cast<AtomId>(key);
                if (nextUseAfter(atom, round - 1) < 0) {
                    buffer.release(key);
                    _atomHome[static_cast<std::size_t>(atom)] = -1;
                }
            }
        }
    }
}

Bytes
ResidencyTracker::used(int engine) const
{
    return _buffers[static_cast<std::size_t>(engine)].used();
}

void
ResidencyTracker::forgetWeight(mem::ResidentKey key, int engine)
{
    auto it = _sliceHolders.find(key);
    if (it == _sliceHolders.end())
        return;
    auto &v = it->second;
    v.erase(std::remove(v.begin(), v.end(), engine), v.end());
    if (v.empty())
        _sliceHolders.erase(it);
}

} // namespace ad::core
