#pragma once

/**
 * @file
 * Atom-engine mapping (Sec. IV-C): place each Round's atoms onto physical
 * engines so that inter-engine data reuse travels the fewest NoC hops.
 *
 * Atoms are laid out zig-zag across the 2D mesh in the order of a layer
 * permutation P; TransferCost(P) = sum over consumer/producer pairs of
 * D(i,j) * TensorSize, and the permutation with minimum cost wins. For
 * Rounds involving more layers than the factorial search can afford, a
 * greedy insertion order replaces exhaustive permutation.
 */

#include <vector>

#include "core/atomic_dag.hh"
#include "core/residency.hh"
#include "core/schedule.hh"
#include "noc/mesh.hh"

namespace ad::core {

/** Mapper parameters. */
struct MapperOptions
{
    /** Permutations are exhaustive up to this many involved layers (M!
     * choices, paper footnote 4); beyond it a greedy order is used. */
    int maxPermutationLayers = 5;
    /** Disable placement optimization entirely (reuse ablation): atoms
     * are placed zig-zag in candidate order. */
    bool optimize = true;
    /** Sort atoms by tile index within each layer group so recurring
     * layers land on recurring engine slots. Disable to model mappers
     * with no spatial awareness (the Rammer-like baseline). */
    bool stableOrder = true;
};

/** Placement engine for one AtomicDag on one mesh. */
class AtomEngineMapper
{
  public:
    /** Create a mapper over @p dag and @p topo. */
    AtomEngineMapper(const AtomicDag &dag, const noc::MeshTopology &topo,
                     MapperOptions options = {});

    /**
     * Map one Round's @p atoms onto engines. @p residency locates the
     * producer engine of every on-chip dependency.
     */
    std::vector<Placement> mapRound(const std::vector<AtomId> &atoms,
                                    const ResidencyTracker &residency) const;

    /**
     * TransferCost of a concrete placement: sum of hops x bytes over all
     * on-chip dependencies (exposed for tests and diagnostics).
     */
    std::uint64_t transferCost(const std::vector<Placement> &placements,
                               const ResidencyTracker &residency) const;

    /** Boustrophedon engine enumeration used for zig-zag allocation. */
    const std::vector<int> &zigzagOrder() const { return _zigzag; }

  private:
    std::vector<Placement> placeInOrder(
        const std::vector<std::vector<AtomId>> &groups,
        const std::vector<std::size_t> &perm) const;

    /** Transfer + weight-affinity cost of putting @p atom on @p engine. */
    std::uint64_t atomCost(AtomId atom, int engine,
                           const ResidencyTracker &residency) const;

    /** Greedy per-atom slot assignment keeping the chosen atom order. */
    std::vector<Placement> refine(std::vector<Placement> placements,
                                  const ResidencyTracker &residency) const;

    const AtomicDag *_dag;
    const noc::MeshTopology *_topo;
    MapperOptions _options;
    std::vector<int> _zigzag;
};

} // namespace ad::core
