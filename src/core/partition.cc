#include "partition.hh"

#include <algorithm>

#include "util/common.hh"

namespace ad::core {

std::vector<TileShape>
evenPartitionShapes(const graph::Graph &graph, int tiles,
                    PartitionPolicy policy)
{
    if (tiles < 1)
        fatal("tile count must be positive");

    std::vector<TileShape> shapes(graph.size(), TileShape{1, 1, 1});
    for (const graph::Layer &layer : graph.layers()) {
        if (layer.type == graph::OpType::Input ||
            layer.type == graph::OpType::Concat) {
            continue;
        }
        int nh = 1, nw = 1, nc = 1;
        if (policy == PartitionPolicy::ChannelFirst) {
            // Distribute output channels across engines first (down to a
            // 4-channel filter group per engine); only then split the
            // spatial dims.
            nc = std::min(tiles, std::max(1, layer.out.c / 4));
            int rest = ceilDiv(tiles, nc);
            nh = std::min(rest, layer.out.h);
            rest = ceilDiv(rest, nh);
            nw = std::min(rest, layer.out.w);
        } else {
            // Grow the dimension with the most remaining headroom.
            while (nh * nw * nc < tiles) {
                const int room_h = layer.out.h / (nh + 1);
                const int room_w = layer.out.w / (nw + 1);
                const int room_c = layer.out.c / (nc + 1);
                if (room_h >= room_w && room_h >= room_c && room_h >= 1) {
                    ++nh;
                } else if (room_w >= room_c && room_w >= 1) {
                    ++nw;
                } else if (room_c >= 1) {
                    ++nc;
                } else {
                    break; // layer too small to split further
                }
            }
        }
        shapes[static_cast<std::size_t>(layer.id)] = {
            ceilDiv(layer.out.h, nh), ceilDiv(layer.out.w, nw),
            ceilDiv(layer.out.c, nc)};
    }
    return shapes;
}

} // namespace ad::core
