#include "orchestrator.hh"

#include <algorithm>
#include <chrono>

#include "engine/cached_cost_model.hh"
#include "noc/mesh.hh"

namespace ad::core {

Orchestrator::Orchestrator(const sim::SystemConfig &system,
                           OrchestratorOptions options)
    : _system(system), _options(options)
{
    _system.validate();
    _options.scheduler.engines = _system.engines();
    if (!_options.onChipReuse) {
        _system.onChipReuse = false;
        _options.mapper.optimize = false;
    }
}

Schedule
Orchestrator::buildSchedule(const AtomicDag &dag) const
{
    // Cached model: per-atom cycles computed for one scheduling trial
    // are shared with every other trial, the SA stage, and the
    // simulator (the store is process-wide per engine configuration).
    const engine::CachedCostModel model(_system.engine,
                                        _system.dataflow);
    DpScheduler scheduler(dag, model, _options.scheduler);
    const RoundList rounds = scheduler.schedule();

    // Mapping pass (Sec. IV-C): walk the rounds with the same residency
    // model the simulator uses, so placement decisions see exactly what
    // will be on-chip at execution time.
    const noc::MeshTopology topo(_system.meshX, _system.meshY);
    AtomEngineMapper mapper(dag, topo, _options.mapper);
    ResidencyTracker residency(dag, _system.engines(),
                               _system.engine.bufferBytes);
    residency.attachSchedule(rounds);

    Schedule schedule;
    schedule.mode = scheduler.effectiveMode();
    schedule.rounds.reserve(rounds.size());
    for (std::size_t t = 0; t < rounds.size(); ++t) {
        residency.beginRound(static_cast<int>(t));
        Round round;
        round.placements = mapper.mapRound(rounds[t], residency);
        if (_options.onChipReuse) {
            for (const Placement &p : round.placements) {
                const graph::LayerId layer = dag.atom(p.atom).layer;
                const int slice = dag.atom(p.atom).cs;
                const Bytes wbytes = dag.weightBytes(p.atom);
                if (wbytes > 0 &&
                    !residency.weightsResident(layer, slice, p.engine)) {
                    residency.installWeights(layer, slice, p.engine,
                                             wbytes,
                                             static_cast<int>(t));
                }
            }
            for (const Placement &p : round.placements)
                residency.produce(p.atom, p.engine,
                                  static_cast<int>(t));
        }
        schedule.rounds.push_back(std::move(round));
    }
    return schedule;
}

OrchestratorResult
Orchestrator::run(const graph::Graph &graph) const
{
    const auto start = std::chrono::steady_clock::now();

    const engine::CachedCostModel model(_system.engine,
                                        _system.dataflow);
    OrchestratorResult result;

    // Stage 1: atomic tensor generation (Sec. IV-A). The iterative
    // search of Fig. 4(b) also keeps the naive balanced partition in the
    // candidate pool — whenever the SA granularity is not an improvement
    // the evaluation model rejects it.
    // Under KC-P a spatial-leaning split keeps channel tiles aligned;
    // under YX-P a channel-leaning split keeps the spatial dims whole.
    const PartitionPolicy aligned_policy =
        _system.dataflow == engine::DataflowKind::YxPartition
            ? PartitionPolicy::ChannelFirst
            : PartitionPolicy::Balanced;
    // With several samples in flight, the naive partition does not need
    // engines-many tiles per layer: batch parallelism already fills the
    // mesh.
    const int even_tiles = std::max(
        1, _system.engines() /
               std::min(_options.batch, _system.engines()));

    // Total atoms a shape vector would create for this batch.
    const auto atom_count = [&graph,
                             this](const std::vector<TileShape> &shapes) {
        std::size_t n = 0;
        for (const graph::Layer &l : graph.layers()) {
            if (l.type == graph::OpType::Input ||
                l.type == graph::OpType::Concat) {
                continue;
            }
            const TileShape &s =
                shapes[static_cast<std::size_t>(l.id)];
            n += static_cast<std::size_t>(
                     ceilDiv(l.out.h, std::clamp(s.h, 1, l.out.h))) *
                 static_cast<std::size_t>(
                     ceilDiv(l.out.w, std::clamp(s.w, 1, l.out.w))) *
                 static_cast<std::size_t>(
                     ceilDiv(l.out.c, std::clamp(s.c, 1, l.out.c)));
        }
        return n * static_cast<std::size_t>(_options.batch);
    };

    std::vector<std::vector<TileShape>> shape_sets;
    switch (_options.atomGen) {
      case AtomGenMode::EvenPartition:
        shape_sets.push_back(
            evenPartitionShapes(graph, even_tiles, aligned_policy));
        break;
      case AtomGenMode::Sa: {
        const ShapeCatalog catalog(graph, model);
        const SaAtomGenerator generator(_options.sa);
        result.generation = generator.generate(catalog);
        // Coarsen toward larger unified cycles until the DAG fits the
        // atom budget (tiny-layer networks at large batch).
        std::vector<TileShape> shapes = result.generation.shapes;
        double target = std::max(result.generation.meanCycles, 1.0);
        for (int i = 0; i < 16 && atom_count(shapes) > _options.maxAtoms;
             ++i) {
            target *= 1.8;
            for (const graph::Layer &l : graph.layers()) {
                if (!catalog.candidatesFor(l.id).empty()) {
                    shapes[static_cast<std::size_t>(l.id)] =
                        catalog.nearest(l.id, target).shape;
                }
            }
        }
        shape_sets.push_back(std::move(shapes));
        if (_options.scheduler.mode == SchedMode::Dp) {
            auto even =
                evenPartitionShapes(graph, even_tiles, aligned_policy);
            if (atom_count(even) <= _options.maxAtoms)
                shape_sets.push_back(std::move(even));
        }
        break;
      }
    }

    // Stage 2-4: atomic DAG, scheduling, mapping, system evaluation —
    // candidate solutions are fed to the evaluation model and the
    // minimum-cost one is recorded. In Dp mode the search covers the DP
    // lookahead, the greedy priority rules, and plain dependency order,
    // each with and without placement optimization; a non-Dp mode pins a
    // single candidate (used by the Fig. 10 ablations).
    const sim::SystemSimulator simulator(_system);
    struct Candidate
    {
        SchedMode mode;
        bool optimizeMapping;
    };
    std::vector<Candidate> candidates;
    if (_options.scheduler.mode == SchedMode::Dp &&
        _options.mapper.optimize) {
        candidates = {{SchedMode::Dp, true},
                      {SchedMode::Greedy, true},
                      {SchedMode::LayerOrder, true},
                      {SchedMode::LayerOrder, false},
                      {SchedMode::LayerBatched, true},
                      {SchedMode::LayerBatched, false}};
    } else {
        candidates = {{_options.scheduler.mode,
                       _options.mapper.optimize}};
    }

    AtomicDagOptions dag_options;
    dag_options.batch = _options.batch;
    dag_options.bytesPerElem = _system.engine.bytesPerElem;

    bool first = true;
    for (const auto &shapes : shape_sets) {
        auto dag = std::make_unique<AtomicDag>(graph, shapes,
                                               dag_options);
        bool dag_won = false;
        for (const Candidate &candidate : candidates) {
            OrchestratorOptions trial_options = _options;
            trial_options.scheduler.mode = candidate.mode;
            trial_options.mapper.optimize = candidate.optimizeMapping;
            Orchestrator trial(_system, trial_options);
            Schedule schedule = trial.buildSchedule(*dag);
            sim::ExecutionReport report =
                simulator.execute(*dag, schedule);
            // Primary objective: cycles. Near-ties (within 10%) resolve
            // by energy, so the search does not trade a large energy
            // regression for a marginal speedup.
            bool better = false;
            if (first) {
                better = true;
            } else if (report.totalCycles <
                       result.report.totalCycles * 90 / 100) {
                better = true;
            } else if (report.totalCycles <=
                           result.report.totalCycles * 110 / 100 &&
                       report.totalEnergyPj() <
                           result.report.totalEnergyPj()) {
                better = true;
            }
            if (better) {
                first = false;
                dag_won = true;
                result.schedule = std::move(schedule);
                result.report = report;
            }
        }
        if (dag_won)
            result.dag = std::move(dag);
    }

    result.searchSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

} // namespace ad::core
