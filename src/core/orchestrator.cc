#include "orchestrator.hh"

#include <algorithm>
#include <cmath>

#include "engine/cached_cost_model.hh"
#include "engine/surrogate_cost_model.hh"
#include "noc/mesh.hh"
#include "obs/clock.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/thread_pool.hh"

namespace ad::core {

namespace {

/**
 * Cross-DAG confirm gate for surrogate screening. The analytic Round
 * estimate systematically over-costs the dense even-partition fallback
 * DAG relative to the SA DAG (observed inflation 1.2-2.2x across the
 * zoo), so estimates never rank DAGs against each other directly.
 * Instead the SA DAG's best trial is always confirmed exactly, and a
 * fallback DAG's best trial is confirmed only when its estimate stays
 * below margin x the best confirmed plan's exact cycles — i.e. only
 * when, after de-inflation, it could still plausibly win. Pinned:
 * lowering it trades cold-plan wall for screened-plan quality; the
 * bench_serve surrogate cell FATALs if the screened plan drifts past
 * tolerance, so this constant only moves together with a re-measured
 * EXPERIMENTS.md table.
 */
constexpr double kCrossDagConfirmMargin = 2.0;

} // namespace

Orchestrator::Orchestrator(const sim::SystemConfig &system,
                           OrchestratorOptions options,
                           sim::MeshView view)
    : _base(system), _view(view.resolved(system.meshX, system.meshY)),
      _system(sim::viewSystem(system, _view)), _options(options)
{
    _system.validate();
    _options.scheduler.engines = _system.engines();
    if (!_options.onChipReuse) {
        _base.onChipReuse = false;
        _system.onChipReuse = false;
        _options.mapper.optimize = false;
    }
}

Schedule
Orchestrator::buildSchedule(const AtomicDag &dag) const
{
    // Cached model: per-atom cycles computed for one scheduling trial
    // are shared with every other trial, the SA stage, and the
    // simulator (the store is process-wide per engine configuration).
    const engine::CachedCostModel model(_system.engine,
                                        _system.dataflow);
    DpScheduler scheduler(dag, model, _options.scheduler);
    const RoundList rounds = scheduler.schedule();
    return mapRounds(dag, rounds, scheduler.effectiveMode());
}

Schedule
Orchestrator::mapRounds(const AtomicDag &dag, const RoundList &rounds,
                        SchedMode mode) const
{
    // Mapping pass (Sec. IV-C): walk the rounds with the same residency
    // model the simulator uses, so placement decisions see exactly what
    // will be on-chip at execution time.
    const noc::MeshTopology topo(_system.meshX, _system.meshY);
    AtomEngineMapper mapper(dag, topo, _options.mapper);
    ResidencyTracker residency(dag, _system.engines(),
                               _system.engine.bufferBytes);
    residency.attachSchedule(rounds);

    Schedule schedule;
    schedule.mode = mode;
    schedule.rounds.reserve(rounds.size());
    for (std::size_t t = 0; t < rounds.size(); ++t) {
        residency.beginRound(static_cast<int>(t));
        Round round;
        round.placements = mapper.mapRound(rounds[t], residency);
        if (_options.onChipReuse) {
            for (const Placement &p : round.placements) {
                const graph::LayerId layer = dag.atom(p.atom).layer;
                const int slice = dag.atom(p.atom).cs;
                const Bytes wbytes = dag.weightBytes(p.atom);
                if (wbytes > 0 &&
                    !residency.weightsResident(layer, slice, p.engine)) {
                    residency.installWeights(layer, slice, p.engine,
                                             wbytes,
                                             static_cast<int>(t));
                }
            }
            for (const Placement &p : round.placements)
                residency.produce(p.atom, p.engine,
                                  static_cast<int>(t));
        }
        schedule.rounds.push_back(std::move(round));
    }
    return schedule;
}

PlanResult
Orchestrator::plan(const graph::Graph &graph,
                   obs::Instrumentation *ins) const
{
    OrchestratorResult r = runImpl(graph, ins);
    PlanResult out;
    out.dag = std::move(r.dag);
    out.schedule = std::move(r.schedule);
    out.report = r.report;
    out.searchSeconds = r.searchSeconds;
    return out;
}

OrchestratorResult
Orchestrator::runImpl(const graph::Graph &graph,
                      obs::Instrumentation *ins) const
{
    const obs::Stopwatch total_sw;
    obs::TraceRecorder *const tr = ins ? ins->trace : nullptr;
    obs::MetricsRegistry *const ms = ins ? ins->metrics : nullptr;

    const engine::CachedCostModel model(_system.engine,
                                        _system.dataflow);
    // Fitted screening surrogate (DESIGN.md Sec. 17). Only consulted
    // when options.surrogate is on; every decision it screens is
    // confirmed against the exact model before entering the plan.
    const engine::SurrogateCostModel surrogate_model(_system.engine,
                                                     _system.dataflow);
    OrchestratorResult result;

    // Stage 1: atomic tensor generation (Sec. IV-A). The iterative
    // search of Fig. 4(b) also keeps the naive balanced partition in the
    // candidate pool — whenever the SA granularity is not an improvement
    // the evaluation model rejects it.
    // Under KC-P a spatial-leaning split keeps channel tiles aligned;
    // under YX-P a channel-leaning split keeps the spatial dims whole.
    const PartitionPolicy aligned_policy =
        _system.dataflow == engine::DataflowKind::YxPartition
            ? PartitionPolicy::ChannelFirst
            : PartitionPolicy::Balanced;
    // With several samples in flight, the naive partition does not need
    // engines-many tiles per layer: batch parallelism already fills the
    // mesh.
    const int even_tiles = std::max(
        1, _system.engines() /
               std::min(_options.batch, _system.engines()));

    // Total atoms a shape vector would create for this batch.
    const auto atom_count = [&graph,
                             this](const std::vector<TileShape> &shapes) {
        std::size_t n = 0;
        for (const graph::Layer &l : graph.layers()) {
            if (l.type == graph::OpType::Input ||
                l.type == graph::OpType::Concat) {
                continue;
            }
            const TileShape &s =
                shapes[static_cast<std::size_t>(l.id)];
            n += static_cast<std::size_t>(
                     ceilDiv(l.out.h, std::clamp(s.h, 1, l.out.h))) *
                 static_cast<std::size_t>(
                     ceilDiv(l.out.w, std::clamp(s.w, 1, l.out.w))) *
                 static_cast<std::size_t>(
                     ceilDiv(l.out.c, std::clamp(s.c, 1, l.out.c)));
        }
        return n * static_cast<std::size_t>(_options.batch);
    };

    std::vector<std::vector<TileShape>> shape_sets;
    switch (_options.atomGen) {
      case AtomGenMode::EvenPartition:
        shape_sets.push_back(
            evenPartitionShapes(graph, even_tiles, aligned_policy));
        break;
      case AtomGenMode::Sa: {
        const obs::Stopwatch gen_sw;
        const ShapeCatalog catalog =
            _options.surrogate
                ? ShapeCatalog(graph, surrogate_model, {}, &model)
                : ShapeCatalog(graph, model);
        const SaAtomGenerator generator(_options.sa);
        result.generation = generator.generate(catalog);
        if (ms) {
            ms->gauge("host.generation_seconds").set(gen_sw.seconds());
            ms->counter("sa.iterations")
                .add(static_cast<std::uint64_t>(
                    result.generation.iterations));
            ms->counter("sa.accepted_moves")
                .add(static_cast<std::uint64_t>(
                    result.generation.acceptedMoves));
            ms->gauge("sa.accept_rate")
                .set(result.generation.iterations > 0
                         ? static_cast<double>(
                               result.generation.acceptedMoves) /
                               result.generation.iterations
                         : 0.0);
            ms->gauge("sa.mean_cycles")
                .set(result.generation.meanCycles);
            ms->gauge("sa.final_variance")
                .set(result.generation.finalVariance);
            ms->gauge("sa.mean_utilization")
                .set(result.generation.meanUtilization);
            if (result.generation.screened) {
                // Deterministic screening telemetry (thread-count
                // invariant, so no "host." prefix): proves every
                // accepted move paid an exact re-score.
                ms->counter("sa.screen_rejects")
                    .add(static_cast<std::uint64_t>(
                        result.generation.screenRejects));
                ms->counter("sa.confirm_rejects")
                    .add(static_cast<std::uint64_t>(
                        result.generation.confirmRejects));
                ms->counter("sa.exact_rescores")
                    .add(static_cast<std::uint64_t>(
                        result.generation.exactRescores));
            }
        }
        if (tr) {
            // SA telemetry: energy and temperature curves as counter
            // series on the search track, one sample per iteration
            // (trace time = iteration index, not cycles).
            tr->setTrackName(obs::kTrackSearch, "sa.search");
            for (std::size_t i = 0;
                 i < result.generation.varianceTrace.size(); ++i) {
                tr->counter(obs::kTrackSearch, i, "sa.energy",
                            result.generation.varianceTrace[i]);
                tr->counter(obs::kTrackSearch, i, "sa.temperature",
                            _options.sa.initialTemp *
                                std::pow(_options.sa.lambda,
                                         static_cast<double>(i + 1)));
            }
        }
        // Coarsen toward larger unified cycles until the DAG fits the
        // atom budget (tiny-layer networks at large batch).
        std::vector<TileShape> shapes = result.generation.shapes;
        double target = std::max(result.generation.meanCycles, 1.0);
        for (int i = 0; i < 16 && atom_count(shapes) > _options.maxAtoms;
             ++i) {
            target *= 1.8;
            for (const graph::Layer &l : graph.layers()) {
                if (!catalog.candidatesFor(l.id).empty()) {
                    shapes[static_cast<std::size_t>(l.id)] =
                        catalog.nearest(l.id, target).shape;
                }
            }
        }
        shape_sets.push_back(std::move(shapes));
        if (_options.scheduler.mode == SchedMode::Dp) {
            auto even =
                evenPartitionShapes(graph, even_tiles, aligned_policy);
            if (atom_count(even) <= _options.maxAtoms)
                shape_sets.push_back(std::move(even));
        }
        break;
      }
    }

    // Stage 2-4: atomic DAG, scheduling, mapping, system evaluation —
    // candidate solutions are fed to the evaluation model and the
    // minimum-cost one is recorded. In Dp mode the search covers the DP
    // lookahead, the greedy priority rules, and plain dependency order,
    // each with and without placement optimization; a non-Dp mode pins a
    // single candidate (used by the Fig. 10 ablations).
    const sim::SystemSimulator simulator(_base, _view);
    struct Candidate
    {
        SchedMode mode;
        bool optimizeMapping;
    };
    std::vector<Candidate> candidates;
    if (_options.scheduler.mode == SchedMode::Dp &&
        _options.mapper.optimize) {
        candidates = {{SchedMode::Dp, true},
                      {SchedMode::Greedy, true},
                      {SchedMode::LayerOrder, true},
                      {SchedMode::LayerOrder, false},
                      {SchedMode::LayerBatched, true},
                      {SchedMode::LayerBatched, false}};
    } else {
        candidates = {{_options.scheduler.mode,
                       _options.mapper.optimize}};
    }

    AtomicDagOptions dag_options;
    dag_options.batch = _options.batch;
    dag_options.bytesPerElem = _system.engine.bytesPerElem;

    std::vector<std::unique_ptr<AtomicDag>> dags;
    dags.reserve(shape_sets.size());
    for (const auto &shapes : shape_sets) {
        dags.push_back(
            std::make_unique<AtomicDag>(graph, shapes, dag_options));
    }

    // One trial per (DAG, scheduling candidate), in the same
    // dag-major order the unscreened sweep evaluates them. When
    // surrogate screening is on, raw-mapping variants are dropped up
    // front (they only differ downstream of mapping, which screening
    // ranks by schedule estimate anyway).
    struct Trial
    {
        std::size_t dagIdx = 0;
        SchedMode mode = SchedMode::Dp;
        bool optimizeMapping = true;
        SchedMode effective = SchedMode::Dp;
        RoundList rounds;
        double estimate = 0.0;
        bool confirm = true;
    };
    std::vector<Trial> trials;
    for (std::size_t d = 0; d < dags.size(); ++d) {
        for (const Candidate &candidate : candidates) {
            if (_options.surrogate && candidates.size() > 1 &&
                !candidate.optimizeMapping) {
                continue;
            }
            Trial trial;
            trial.dagIdx = d;
            trial.mode = candidate.mode;
            trial.optimizeMapping = candidate.optimizeMapping;
            trials.push_back(std::move(trial));
        }
    }

    // Screening tier (only meaningful with competing candidates):
    // schedule every trial — cheap next to mapping + simulation — rank
    // by the analytic Round-cost estimate, and confirm only the
    // kScreenConfirmTrials best with the full exact pipeline.
    const bool screening = _options.surrogate && trials.size() > 1;
    if (screening) {
        // Fan the candidate schedules out: each index writes only its
        // own Trial, the memoized cost store is thread-safe, and every
        // per-trial value is a pure function of (dag, mode) — so the
        // estimates are bit-identical for any pool size.
        util::ThreadPool::global().parallelFor(
            trials.size(), [&](std::size_t i) {
                Trial &trial = trials[i];
                SchedulerOptions sched_options = _options.scheduler;
                sched_options.mode = trial.mode;
                DpScheduler scheduler(*dags[trial.dagIdx], model,
                                      sched_options);
                trial.rounds = scheduler.schedule();
                trial.effective = scheduler.effectiveMode();
                trial.estimate = scheduler.estimateCost(trial.rounds);
            });
        std::vector<std::size_t> order(trials.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        // Stable: estimate ties keep the original evaluation order.
        std::stable_sort(order.begin(), order.end(),
                         [&trials](std::size_t a, std::size_t b) {
                             return trials[a].estimate <
                                    trials[b].estimate;
                         });
        // The analytic estimate carries a per-DAG bias (atom granularity
        // shifts the makespan/transfer balance), so estimates only rank
        // reliably WITHIN one DAG. The best-estimate trial of every DAG
        // is therefore marked for confirmation; the confirm loop below
        // additionally gates fallback DAGs on kCrossDagConfirmMargin
        // once the SA DAG's exact cycles are known.
        for (Trial &trial : trials)
            trial.confirm = false;
        std::vector<char> dag_covered(dags.size(), 0);
        for (std::size_t idx : order) {
            if (dag_covered[trials[idx].dagIdx])
                continue;
            dag_covered[trials[idx].dagIdx] = 1;
            trials[idx].confirm = true;
        }
    }

    // Confirm phase: map + simulate the surviving trials in the same
    // dag-major order the unscreened sweep uses, folding each result
    // into the winner as it lands. Screened runs walk the trials
    // sequentially because the cross-DAG gate needs the SA DAG's exact
    // cycles before deciding whether a fallback DAG is worth paying
    // for; the unscreened path is the historical loop, untouched.
    bool first = true;
    std::size_t winner_dag = dags.size();
    std::size_t confirmed = 0;
    for (Trial &trial : trials) {
        if (screening && !trial.confirm)
            continue;
        if (screening && trial.dagIdx > 0 && !first &&
            trial.estimate >=
                kCrossDagConfirmMargin *
                    static_cast<double>(result.report.totalCycles)) {
            // Even de-inflated, this fallback DAG cannot plausibly beat
            // the confirmed plan — skip its mapping + simulation.
            continue;
        }
        ++confirmed;
        OrchestratorOptions trial_options = _options;
        trial_options.scheduler.mode = trial.mode;
        trial_options.mapper.optimize = trial.optimizeMapping;
        Orchestrator trial_orch(_base, trial_options, _view);
        // A screened trial re-uses the rounds it was ranked on; the
        // unscreened path re-derives them inside buildSchedule exactly
        // as before. Either way the result below is fully mapped and
        // exactly simulated — the surrogate never scores a final plan.
        Schedule schedule =
            screening ? trial_orch.mapRounds(*dags[trial.dagIdx],
                                             trial.rounds,
                                             trial.effective)
                      : trial_orch.buildSchedule(*dags[trial.dagIdx]);
        sim::ExecutionReport report =
            simulator.execute(*dags[trial.dagIdx], schedule);
        // Primary objective: cycles. Near-ties (within 10%) resolve
        // by energy, so the search does not trade a large energy
        // regression for a marginal speedup.
        bool better = false;
        if (first) {
            better = true;
        } else if (report.totalCycles <
                   result.report.totalCycles * 90 / 100) {
            better = true;
        } else if (report.totalCycles <=
                       result.report.totalCycles * 110 / 100 &&
                   report.totalEnergyPj() <
                       result.report.totalEnergyPj()) {
            better = true;
        }
        if (better) {
            first = false;
            winner_dag = trial.dagIdx;
            result.schedule = std::move(schedule);
            result.report = report;
        }
    }
    if (winner_dag < dags.size())
        result.dag = std::move(dags[winner_dag]);

    // Candidate evaluations above run untraced; re-execute only the
    // winning schedule with instrumentation so the trace describes
    // exactly the plan this call returns. Determinism makes the traced
    // re-run bit-identical to the recorded report.
    if (ins && result.dag) {
        const sim::ExecutionReport traced =
            simulator.execute(*result.dag, result.schedule, ins);
        adAssert(traced.bitIdentical(result.report),
                 "instrumented re-execution diverged from the "
                 "uninstrumented winner");
    }

    result.searchSeconds = total_sw.seconds();
    // Everything below is host-side state (wall clocks, the process-wide
    // cost-model memo store with its racy relaxed counters): metric
    // names take the reserved "host." prefix so determinism comparisons
    // can exclude them wholesale — see MetricsRegistry::renderText.
    if (ms) {
        ms->gauge("host.search_seconds").set(result.searchSeconds);
        ms->gauge("host.costmodel.hits")
            .set(static_cast<double>(model.hits()));
        ms->gauge("host.costmodel.misses")
            .set(static_cast<double>(model.misses()));
        ms->gauge("host.costmodel.size")
            .set(static_cast<double>(model.size()));
        ms->gauge("host.costmodel.contended")
            .set(static_cast<double>(model.contended()));
        if (_options.surrogate) {
            ms->gauge("host.surrogate.plan_trials")
                .set(static_cast<double>(trials.size()));
            ms->gauge("host.surrogate.confirmed_trials")
                .set(static_cast<double>(confirmed));
            ms->gauge("host.surrogate.fitted_evals")
                .set(static_cast<double>(
                    surrogate_model.fittedEvals()));
            ms->gauge("host.surrogate.fallback_evals")
                .set(static_cast<double>(
                    surrogate_model.fallbackEvals()));
        }
    }
    return result;
}

} // namespace ad::core
