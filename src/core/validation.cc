#include "validation.hh"

#include <set>
#include <sstream>

namespace ad::core {

std::vector<ScheduleViolation>
validateSchedule(const AtomicDag &dag, const Schedule &schedule,
                 int engines)
{
    std::vector<ScheduleViolation> violations;
    auto complain = [&violations](auto &&...parts) {
        std::ostringstream os;
        (os << ... << parts);
        violations.push_back({os.str()});
    };

    std::vector<int> round_of(dag.size(), -1);
    for (std::size_t t = 0; t < schedule.rounds.size(); ++t) {
        const Round &round = schedule.rounds[t];
        if (round.placements.empty())
            complain("round ", t, " is empty");
        if (round.placements.size() > static_cast<std::size_t>(engines))
            complain("round ", t, " holds ", round.placements.size(),
                     " atoms on ", engines, " engines");
        std::set<int> used;
        for (const Placement &p : round.placements) {
            if (p.engine < 0 || p.engine >= engines)
                complain("round ", t, " atom ", p.atom,
                         " mapped to invalid engine ", p.engine);
            else if (!used.insert(p.engine).second)
                complain("round ", t, " engine ", p.engine,
                         " double-booked");
            if (p.atom < 0 ||
                static_cast<std::size_t>(p.atom) >= dag.size()) {
                complain("round ", t, " references unknown atom ",
                         p.atom);
                continue;
            }
            if (round_of[static_cast<std::size_t>(p.atom)] != -1)
                complain("atom ", p.atom, " scheduled twice");
            round_of[static_cast<std::size_t>(p.atom)] =
                static_cast<int>(t);
        }
    }

    for (const Atom &a : dag.atoms()) {
        const int mine = round_of[static_cast<std::size_t>(a.id)];
        if (mine == -1) {
            complain("atom ", a.id, " never scheduled");
            continue;
        }
        for (AtomId dep : dag.depsSpan(a.id)) {
            const int theirs = round_of[static_cast<std::size_t>(dep)];
            if (theirs == -1 || theirs >= mine)
                complain("atom ", a.id, " (round ", mine,
                         ") depends on atom ", dep, " (round ", theirs,
                         ")");
        }
    }
    return violations;
}

bool
scheduleIsValid(const AtomicDag &dag, const Schedule &schedule,
                int engines)
{
    return validateSchedule(dag, schedule, engines).empty();
}

} // namespace ad::core
