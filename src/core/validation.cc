#include "validation.hh"

#include <set>
#include <sstream>

namespace ad::core {

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::EmptyRound:
        return "empty round";
      case ViolationKind::RoundOverCapacity:
        return "round over capacity";
      case ViolationKind::InvalidEngine:
        return "invalid engine";
      case ViolationKind::EngineDoubleBooked:
        return "engine double-booked";
      case ViolationKind::UnknownAtom:
        return "unknown atom";
      case ViolationKind::AtomScheduledTwice:
        return "atom scheduled twice";
      case ViolationKind::AtomNeverScheduled:
        return "atom never scheduled";
      case ViolationKind::DependencyOrder:
        return "dependency order";
    }
    return "unknown";
}

std::vector<ScheduleViolation>
validateSchedule(const AtomicDag &dag, const Schedule &schedule,
                 int engines)
{
    std::vector<ScheduleViolation> violations;
    auto complain = [&violations](ViolationKind kind, auto &&...parts) {
        std::ostringstream os;
        (os << ... << parts);
        violations.push_back({kind, os.str()});
    };

    std::vector<int> round_of(dag.size(), -1);
    for (std::size_t t = 0; t < schedule.rounds.size(); ++t) {
        const Round &round = schedule.rounds[t];
        if (round.placements.empty())
            complain(ViolationKind::EmptyRound, "round ", t,
                     " is empty");
        if (round.placements.size() > static_cast<std::size_t>(engines))
            complain(ViolationKind::RoundOverCapacity, "round ", t,
                     " holds ", round.placements.size(), " atoms on ",
                     engines, " engines");
        std::set<int> used;
        for (const Placement &p : round.placements) {
            if (p.engine < 0 || p.engine >= engines)
                complain(ViolationKind::InvalidEngine, "round ", t,
                         " atom ", p.atom, " mapped to invalid engine ",
                         p.engine);
            else if (!used.insert(p.engine).second)
                complain(ViolationKind::EngineDoubleBooked, "round ", t,
                         " engine ", p.engine, " double-booked");
            if (p.atom < 0 ||
                static_cast<std::size_t>(p.atom) >= dag.size()) {
                complain(ViolationKind::UnknownAtom, "round ", t,
                         " references unknown atom ", p.atom);
                continue;
            }
            if (round_of[static_cast<std::size_t>(p.atom)] != -1)
                complain(ViolationKind::AtomScheduledTwice, "atom ",
                         p.atom, " scheduled twice");
            round_of[static_cast<std::size_t>(p.atom)] =
                static_cast<int>(t);
        }
    }

    for (const Atom &a : dag.atoms()) {
        const int mine = round_of[static_cast<std::size_t>(a.id)];
        if (mine == -1) {
            complain(ViolationKind::AtomNeverScheduled, "atom ", a.id,
                     " never scheduled");
            continue;
        }
        for (AtomId dep : dag.depsSpan(a.id)) {
            const int theirs = round_of[static_cast<std::size_t>(dep)];
            if (theirs == -1 || theirs >= mine)
                complain(ViolationKind::DependencyOrder, "atom ", a.id,
                         " (round ", mine, ") depends on atom ", dep,
                         " (round ", theirs, ")");
        }
    }
    return violations;
}

bool
scheduleIsValid(const AtomicDag &dag, const Schedule &schedule,
                int engines)
{
    return validateSchedule(dag, schedule, engines).empty();
}

} // namespace ad::core
