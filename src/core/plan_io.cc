#include "plan_io.hh"

#include <bit>
#include <cstring>
#include <utility>
#include <vector>

#include "core/atomic_dag.hh"
#include "graph/serialize.hh"

namespace ad::core {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

/** Little-endian append-only byte sink. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        _out.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            _out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            _out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(std::string_view s)
    {
        u64(s.size());
        _out.append(s);
    }

    std::string take() { return std::move(_out); }

  private:
    std::string _out;
};

/**
 * Bounds-checked little-endian cursor. Every read past the end sets the
 * fail flag and returns zero; callers check ok() once at the end (or at
 * count-validation points), so malformed input degrades to a clean
 * decode failure instead of UB.
 */
class Reader
{
  public:
    explicit Reader(std::string_view in) : _in(in) {}

    std::uint8_t
    u8()
    {
        if (!require(1))
            return 0;
        return static_cast<std::uint8_t>(_in[_pos++]);
    }

    std::uint32_t
    u32()
    {
        if (!require(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(_in[_pos + i]))
                 << (8 * i);
        }
        _pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!require(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(_in[_pos + i]))
                 << (8 * i);
        }
        _pos += 8;
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (!require(n))
            return {};
        std::string s(_in.substr(_pos, n));
        _pos += n;
        return s;
    }

    /** True when @p count elements of @p elem_bytes each could still
     * fit in the remaining input — rejects hostile counts before any
     * allocation sized by them. */
    bool
    fits(std::uint64_t count, std::uint64_t elem_bytes)
    {
        if (count <= remaining() / elem_bytes)
            return true;
        _fail = true;
        return false;
    }

    std::uint64_t remaining() const { return _in.size() - _pos; }

    bool ok() const { return !_fail; }

    bool exhausted() const { return _pos == _in.size(); }

  private:
    bool
    require(std::uint64_t n)
    {
        if (remaining() >= n)
            return true;
        _fail = true;
        _pos = _in.size();
        return false;
    }

    std::string_view _in;
    std::size_t _pos = 0;
    bool _fail = false;
};

void
encodeReport(Writer &w, const sim::ExecutionReport &r)
{
    w.u64(r.totalCycles);
    w.u64(r.rounds);
    w.i32(r.batch);
    w.f64(r.peUtilization);
    w.f64(r.computeUtilization);
    w.f64(r.nocOverhead);
    w.f64(r.memOverhead);
    w.f64(r.onChipReuseRatio);
    w.u64(r.hbmReadBytes);
    w.u64(r.hbmWriteBytes);
    w.u64(r.nocBytes);
    w.u64(r.nocHopBytes);
    w.u64(r.localReuseBytes);
    w.u64(r.weightHbmBytes);
    w.u64(r.spillWriteBytes);
    w.u64(r.finalWriteBytes);
    w.u64(r.storedAtoms);
    w.u64(r.unstoredAtoms);
    w.f64(r.computeEnergyPj);
    w.f64(r.nocEnergyPj);
    w.f64(r.hbmEnergyPj);
    w.f64(r.staticEnergyPj);
    w.u64(r.launchedAtoms);
    w.u64(r.retiredAtoms);
    w.u64(r.nocInjectedBytes);
    w.u64(r.nocEjectedBytes);
    w.u64(r.engineBusyCycles.size());
    for (const Cycles c : r.engineBusyCycles)
        w.u64(c);
}

sim::ExecutionReport
decodeReport(Reader &rd)
{
    sim::ExecutionReport r;
    r.totalCycles = rd.u64();
    r.rounds = rd.u64();
    r.batch = rd.i32();
    r.peUtilization = rd.f64();
    r.computeUtilization = rd.f64();
    r.nocOverhead = rd.f64();
    r.memOverhead = rd.f64();
    r.onChipReuseRatio = rd.f64();
    r.hbmReadBytes = rd.u64();
    r.hbmWriteBytes = rd.u64();
    r.nocBytes = rd.u64();
    r.nocHopBytes = rd.u64();
    r.localReuseBytes = rd.u64();
    r.weightHbmBytes = rd.u64();
    r.spillWriteBytes = rd.u64();
    r.finalWriteBytes = rd.u64();
    r.storedAtoms = rd.u64();
    r.unstoredAtoms = rd.u64();
    r.computeEnergyPj = rd.f64();
    r.nocEnergyPj = rd.f64();
    r.hbmEnergyPj = rd.f64();
    r.staticEnergyPj = rd.f64();
    r.launchedAtoms = rd.u64();
    r.retiredAtoms = rd.u64();
    r.nocInjectedBytes = rd.u64();
    r.nocEjectedBytes = rd.u64();
    const std::uint64_t engines = rd.u64();
    if (!rd.fits(engines, 8))
        return r;
    r.engineBusyCycles.reserve(engines);
    for (std::uint64_t i = 0; i < engines; ++i)
        r.engineBusyCycles.push_back(rd.u64());
    return r;
}

} // namespace

std::string
encodePlanResult(const PlanResult &plan)
{
    Writer w;
    w.u8(plan.dag ? 1 : 0);
    if (plan.dag) {
        const AtomicDag &dag = *plan.dag;
        w.str(graph::toText(dag.graph()));
        w.i32(dag.batch());
        w.i32(dag.bytesPerElem());
        const std::size_t layers = dag.graph().size();
        w.u64(layers);
        for (std::size_t l = 0; l < layers; ++l) {
            const TileShape &s =
                dag.shapeOf(static_cast<graph::LayerId>(l));
            w.i32(s.h);
            w.i32(s.w);
            w.i32(s.c);
        }
    }

    w.u8(static_cast<std::uint8_t>(plan.schedule.mode));
    w.u64(plan.schedule.rounds.size());
    for (const Round &round : plan.schedule.rounds) {
        w.u64(round.placements.size());
        for (const Placement &p : round.placements) {
            w.i32(p.atom);
            w.i32(p.engine);
        }
    }

    encodeReport(w, plan.report);
    return w.take();
}

std::optional<PlanResult>
decodePlanResult(std::string_view payload)
{
    Reader rd(payload);
    PlanResult plan;

    const std::uint8_t has_dag = rd.u8();
    if (has_dag > 1)
        return std::nullopt;
    if (has_dag) {
        const std::string graph_text = rd.str();
        AtomicDagOptions options;
        options.batch = rd.i32();
        options.bytesPerElem = rd.i32();
        const std::uint64_t layers = rd.u64();
        if (!rd.fits(layers, 12))
            return std::nullopt;
        std::vector<TileShape> shapes;
        shapes.reserve(layers);
        for (std::uint64_t l = 0; l < layers; ++l) {
            TileShape s;
            s.h = rd.i32();
            s.w = rd.i32();
            s.c = rd.i32();
            shapes.push_back(s);
        }
        if (!rd.ok())
            return std::nullopt;
        // fromText and the AtomicDag constructor fatal (throw) on
        // semantic nonsense a structurally valid payload can still
        // carry; a stored plan must never crash its loader.
        try {
            graph::Graph graph = graph::fromText(graph_text);
            if (shapes.size() != graph.size())
                return std::nullopt;
            plan.dag = std::make_unique<AtomicDag>(std::move(graph),
                                                   shapes, options);
        } catch (const std::exception &) {
            return std::nullopt;
        }
    }

    const std::uint8_t mode = rd.u8();
    if (mode > static_cast<std::uint8_t>(SchedMode::Dtt))
        return std::nullopt;
    plan.schedule.mode = static_cast<SchedMode>(mode);
    const std::uint64_t rounds = rd.u64();
    if (!rd.fits(rounds, 8))
        return std::nullopt;
    plan.schedule.rounds.reserve(rounds);
    for (std::uint64_t i = 0; i < rounds; ++i) {
        Round round;
        const std::uint64_t placements = rd.u64();
        if (!rd.fits(placements, 8))
            return std::nullopt;
        round.placements.reserve(placements);
        for (std::uint64_t j = 0; j < placements; ++j) {
            Placement p;
            p.atom = rd.i32();
            p.engine = rd.i32();
            round.placements.push_back(p);
        }
        plan.schedule.rounds.push_back(std::move(round));
    }

    plan.report = decodeReport(rd);
    if (!rd.ok() || !rd.exhausted())
        return std::nullopt;
    return plan;
}

} // namespace ad::core
