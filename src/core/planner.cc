#include "planner.hh"

namespace ad::core {

Planner::~Planner() = default;

sim::ExecutionReport
Planner::run(const graph::Graph &graph, obs::Instrumentation *ins) const
{
    return plan(graph, ins).report;
}

} // namespace ad::core
