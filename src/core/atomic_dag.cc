#include "atomic_dag.hh"

#include <algorithm>

namespace ad::core {

using graph::LayerId;
using graph::OpType;

namespace {

/** True for layers that become atoms (everything but Input/Concat). */
bool
isAtomized(OpType type)
{
    return type != OpType::Input && type != OpType::Concat;
}

/** True for ops whose atoms depend on the producer's entire output. */
bool
consumesWholeInput(OpType type)
{
    return type == OpType::FullyConnected || type == OpType::GlobalPool;
}

} // namespace

AtomicDag::AtomicDag(graph::Graph graph,
                     const std::vector<TileShape> &shapes,
                     const AtomicDagOptions &options)
    : _graph(std::move(graph)), _options(options), _shapes(shapes),
      _depths(_graph.depths())
{
    if (_options.batch < 1)
        fatal("batch size must be at least 1");
    if (_shapes.size() < _graph.size())
        fatal("tile shapes must cover every layer: got ", _shapes.size(),
              " for ", _graph.size(), " layers");
    buildAtoms();
    buildEdges();
}

void
AtomicDag::buildAtoms()
{
    const auto layer_count = _graph.size();
    _layerBase.assign(layer_count,
                      std::vector<AtomId>(
                          static_cast<std::size_t>(_options.batch),
                          kNoAtom));
    _atomsPerSample.assign(layer_count, 0);

    for (int b = 0; b < _options.batch; ++b) {
        for (const graph::Layer &layer : _graph.layers()) {
            if (!isAtomized(layer.type))
                continue;
            const auto lid = static_cast<std::size_t>(layer.id);
            TileShape shape = _shapes[lid];
            shape.h = std::clamp(shape.h, 1, layer.out.h);
            shape.w = std::clamp(shape.w, 1, layer.out.w);
            shape.c = std::clamp(shape.c, 1, layer.out.c);
            // Persist the clamp so shapeOf() reports what was used.
            if (b == 0)
                _shapes[lid] = shape;

            const int nh = ceilDiv(layer.out.h, shape.h);
            const int nw = ceilDiv(layer.out.w, shape.w);
            const int nc = ceilDiv(layer.out.c, shape.c);
            _atomsPerSample[lid] = nh * nw * nc;
            _layerBase[lid][static_cast<std::size_t>(b)] =
                static_cast<AtomId>(_atoms.size());

            int index = 0;
            for (int ih = 0; ih < nh; ++ih) {
                for (int iw = 0; iw < nw; ++iw) {
                    for (int ic = 0; ic < nc; ++ic) {
                        Atom a;
                        a.id = static_cast<AtomId>(_atoms.size());
                        a.layer = layer.id;
                        a.batch = b;
                        a.index = index++;
                        a.hs = ih * shape.h;
                        a.he = std::min(layer.out.h, a.hs + shape.h);
                        a.ws = iw * shape.w;
                        a.we = std::min(layer.out.w, a.ws + shape.w);
                        a.cs = ic * shape.c;
                        a.ce = std::min(layer.out.c, a.cs + shape.c);
                        _atoms.push_back(a);
                    }
                }
            }
        }
    }
}

std::vector<AtomicDag::SourceSlice>
AtomicDag::resolveSources(LayerId layer) const
{
    // Expand one producer layer into concrete slices, flattening Concat
    // chains; `base` is the first consumer-input channel the producer
    // covers.
    std::vector<SourceSlice> slices;
    auto expand = [this, &slices](auto &&self, LayerId producer,
                                  int base) -> int {
        const graph::Layer &p = _graph.layer(producer);
        if (p.type == OpType::Concat) {
            int offset = base;
            for (LayerId branch : p.inputs)
                offset = self(self, branch, offset);
            return offset;
        }
        if (p.type == OpType::Input) {
            slices.push_back({graph::kNoLayer, base, p.out.c});
        } else {
            slices.push_back({producer, base, p.out.c});
        }
        return base + p.out.c;
    };

    const graph::Layer &l = _graph.layer(layer);
    for (LayerId input : l.inputs) {
        // Multi-input atomized layers are element-wise (Eltwise): every
        // input independently covers the full channel range, so each
        // expansion restarts at base 0. Single-input layers trivially
        // start at 0 as well; Concat stacking happens inside expand().
        expand(expand, input, 0);
    }
    return slices;
}

void
AtomicDag::collectProducerAtoms(
    LayerId producer, int sample, int h0, int h1, int w0, int w1, int c0,
    int c1, std::vector<std::pair<AtomId, Bytes>> &out) const
{
    const auto lid = static_cast<std::size_t>(producer);
    const AtomId base = _layerBase[lid][static_cast<std::size_t>(sample)];
    adAssert(base != kNoAtom, "producer layer has no atoms");
    const graph::Layer &p = _graph.layer(producer);
    const TileShape &shape = _shapes[lid];

    const int nw = ceilDiv(p.out.w, shape.w);
    const int nc = ceilDiv(p.out.c, shape.c);

    h0 = std::clamp(h0, 0, p.out.h - 1);
    h1 = std::clamp(h1, 1, p.out.h);
    w0 = std::clamp(w0, 0, p.out.w - 1);
    w1 = std::clamp(w1, 1, p.out.w);
    c0 = std::clamp(c0, 0, p.out.c - 1);
    c1 = std::clamp(c1, 1, p.out.c);

    const auto bpe = static_cast<Bytes>(_options.bytesPerElem);
    for (int ih = h0 / shape.h; ih <= (h1 - 1) / shape.h; ++ih) {
        const int ths = ih * shape.h;
        const int the = std::min(p.out.h, ths + shape.h);
        const Bytes oh =
            static_cast<Bytes>(std::min(h1, the) - std::max(h0, ths));
        for (int iw = w0 / shape.w; iw <= (w1 - 1) / shape.w; ++iw) {
            const int tws = iw * shape.w;
            const int twe = std::min(p.out.w, tws + shape.w);
            const Bytes ow = static_cast<Bytes>(std::min(w1, twe) -
                                                std::max(w0, tws));
            for (int ic = c0 / shape.c; ic <= (c1 - 1) / shape.c;
                 ++ic) {
                const int tcs = ic * shape.c;
                const int tce = std::min(p.out.c, tcs + shape.c);
                const Bytes oc = static_cast<Bytes>(
                    std::min(c1, tce) - std::max(c0, tcs));
                out.emplace_back(base + (ih * nw + iw) * nc + ic,
                                 oh * ow * oc * bpe);
            }
        }
    }
}

void
AtomicDag::buildEdges()
{
    std::vector<std::vector<std::pair<AtomId, Bytes>>> deps(
        _atoms.size());
    _readsInput.assign(_atoms.size(), false);

    // Cache per-layer source slices; identical across batch samples.
    std::vector<std::vector<SourceSlice>> sources(_graph.size());
    for (const graph::Layer &layer : _graph.layers()) {
        if (isAtomized(layer.type))
            sources[static_cast<std::size_t>(layer.id)] =
                resolveSources(layer.id);
    }

    for (const Atom &a : _atoms) {
        const graph::Layer &layer = _graph.layer(a.layer);
        const auto &slices = sources[static_cast<std::size_t>(a.layer)];
        auto &my_deps = deps[static_cast<std::size_t>(a.id)];

        if (consumesWholeInput(layer.type)) {
            for (const SourceSlice &s : slices) {
                if (s.producer == graph::kNoLayer) {
                    _readsInput[static_cast<std::size_t>(a.id)] = true;
                    continue;
                }
                const graph::Layer &p = _graph.layer(s.producer);
                collectProducerAtoms(s.producer, a.batch, 0, p.out.h, 0,
                                     p.out.w, 0, p.out.c, my_deps);
            }
        } else {
            // Receptive field of the output tile.
            const graph::WindowParams &win = layer.window;
            const int ih0 = a.hs * win.strideH - win.padH;
            const int ih1 = (a.he - 1) * win.strideH - win.padH + win.kh;
            const int iw0 = a.ws * win.strideW - win.padW;
            const int iw1 = (a.we - 1) * win.strideW - win.padW + win.kw;

            // Channels needed in the consumer's input space.
            int need0 = 0;
            int need1 = layer.in.c;
            if (layer.type == OpType::DepthwiseConv ||
                layer.type == OpType::Pool ||
                layer.type == OpType::Eltwise) {
                need0 = a.cs;
                need1 = a.ce;
            }

            for (const SourceSlice &s : slices) {
                const int lo = std::max(need0, s.chanBegin);
                const int hi = std::min(need1, s.chanBegin + s.chanCount);
                if (lo >= hi)
                    continue;
                if (s.producer == graph::kNoLayer) {
                    _readsInput[static_cast<std::size_t>(a.id)] = true;
                    continue;
                }
                collectProducerAtoms(s.producer, a.batch, ih0, ih1, iw0,
                                     iw1, lo - s.chanBegin,
                                     hi - s.chanBegin, my_deps);
            }
        }
        // Merge duplicate producers (e.g. the same atom reached through
        // two Concat slices), summing the overlap bytes.
        std::sort(my_deps.begin(), my_deps.end());
        std::size_t w = 0;
        for (std::size_t r = 0; r < my_deps.size(); ++r) {
            if (w > 0 && my_deps[w - 1].first == my_deps[r].first) {
                my_deps[w - 1].second += my_deps[r].second;
            } else {
                my_deps[w++] = my_deps[r];
            }
        }
        my_deps.resize(w);
    }

    // Flatten to CSR, forward and inverted.
    _depOffsets.assign(_atoms.size() + 1, 0);
    std::vector<std::int64_t> cons_count(_atoms.size(), 0);
    for (std::size_t i = 0; i < _atoms.size(); ++i) {
        _depOffsets[i + 1] = _depOffsets[i] +
                             static_cast<std::int64_t>(deps[i].size());
        for (const auto &[d, bytes] : deps[i])
            ++cons_count[static_cast<std::size_t>(d)];
    }
    _depEdges.resize(static_cast<std::size_t>(_depOffsets.back()));
    _depEdgeBytes.resize(static_cast<std::size_t>(_depOffsets.back()));
    for (std::size_t i = 0; i < _atoms.size(); ++i) {
        auto cursor = _depOffsets[i];
        for (const auto &[d, bytes] : deps[i]) {
            _depEdges[static_cast<std::size_t>(cursor)] = d;
            _depEdgeBytes[static_cast<std::size_t>(cursor)] = bytes;
            ++cursor;
        }
    }

    _consOffsets.assign(_atoms.size() + 1, 0);
    for (std::size_t i = 0; i < _atoms.size(); ++i)
        _consOffsets[i + 1] = _consOffsets[i] + cons_count[i];
    _consEdges.resize(static_cast<std::size_t>(_consOffsets.back()));
    std::vector<std::int64_t> cursor(_consOffsets.begin(),
                                     _consOffsets.end() - 1);
    for (std::size_t i = 0; i < _atoms.size(); ++i) {
        for (const auto &[d, bytes] : deps[i]) {
            _consEdges[static_cast<std::size_t>(
                cursor[static_cast<std::size_t>(d)]++)] =
                static_cast<AtomId>(i);
        }
    }
}

std::span<const Bytes>
AtomicDag::depBytesSpan(AtomId id) const
{
    const auto i = static_cast<std::size_t>(id);
    adAssert(i < _atoms.size(), "atom id out of range");
    return {_depEdgeBytes.data() + _depOffsets[i],
            _depEdgeBytes.data() + _depOffsets[i + 1]};
}

const Atom &
AtomicDag::atom(AtomId id) const
{
    adAssert(id >= 0 && static_cast<std::size_t>(id) < _atoms.size(),
             "atom id out of range: ", id);
    return _atoms[static_cast<std::size_t>(id)];
}

std::vector<AtomId>
AtomicDag::deps(AtomId id) const
{
    const auto i = static_cast<std::size_t>(id);
    adAssert(i < _atoms.size(), "atom id out of range");
    return {_depEdges.begin() + _depOffsets[i],
            _depEdges.begin() + _depOffsets[i + 1]};
}

std::vector<AtomId>
AtomicDag::consumers(AtomId id) const
{
    const auto i = static_cast<std::size_t>(id);
    adAssert(i < _atoms.size(), "atom id out of range");
    return {_consEdges.begin() + _consOffsets[i],
            _consEdges.begin() + _consOffsets[i + 1]};
}

std::span<const AtomId>
AtomicDag::depsSpan(AtomId id) const
{
    const auto i = static_cast<std::size_t>(id);
    adAssert(i < _atoms.size(), "atom id out of range");
    return {_depEdges.data() + _depOffsets[i],
            _depEdges.data() + _depOffsets[i + 1]};
}

std::span<const AtomId>
AtomicDag::consumersSpan(AtomId id) const
{
    const auto i = static_cast<std::size_t>(id);
    adAssert(i < _atoms.size(), "atom id out of range");
    return {_consEdges.data() + _consOffsets[i],
            _consEdges.data() + _consOffsets[i + 1]};
}

int
AtomicDag::depCount(AtomId id) const
{
    const auto i = static_cast<std::size_t>(id);
    adAssert(i < _atoms.size(), "atom id out of range");
    return static_cast<int>(_depOffsets[i + 1] - _depOffsets[i]);
}

bool
AtomicDag::readsExternalInput(AtomId id) const
{
    const auto i = static_cast<std::size_t>(id);
    adAssert(i < _atoms.size(), "atom id out of range");
    return _readsInput[i];
}

engine::AtomWorkload
AtomicDag::workload(AtomId id) const
{
    const Atom &a = atom(id);
    const graph::Layer &layer = _graph.layer(a.layer);
    engine::AtomWorkload w;
    w.type = layer.type;
    w.h = a.tileH();
    w.w = a.tileW();
    w.co = a.tileC();
    w.ci = layer.in.c;
    if (layer.type == OpType::DepthwiseConv ||
        layer.type == OpType::Pool || layer.type == OpType::Eltwise) {
        w.ci = a.tileC();
    }
    w.window = layer.window;
    return w;
}

Bytes
AtomicDag::ofmapBytes(AtomId id) const
{
    return static_cast<Bytes>(atom(id).outElems()) *
           _options.bytesPerElem;
}

Bytes
AtomicDag::weightBytes(AtomId id) const
{
    return workload(id).weightBytes(_options.bytesPerElem);
}

std::pair<AtomId, AtomId>
AtomicDag::layerAtoms(LayerId layer, int sample) const
{
    const auto lid = static_cast<std::size_t>(layer);
    adAssert(lid < _layerBase.size(), "layer id out of range");
    adAssert(sample >= 0 && sample < _options.batch,
             "sample out of range");
    const AtomId base = _layerBase[lid][static_cast<std::size_t>(sample)];
    if (base == kNoAtom)
        return {kNoAtom, kNoAtom};
    return {base, base + _atomsPerSample[lid]};
}

int
AtomicDag::atomsPerSample(LayerId layer) const
{
    const auto lid = static_cast<std::size_t>(layer);
    adAssert(lid < _atomsPerSample.size(), "layer id out of range");
    return _atomsPerSample[lid];
}

int
AtomicDag::layerDepth(LayerId layer) const
{
    const auto lid = static_cast<std::size_t>(layer);
    adAssert(lid < _depths.size(), "layer id out of range");
    return _depths[lid];
}

const TileShape &
AtomicDag::shapeOf(LayerId layer) const
{
    const auto lid = static_cast<std::size_t>(layer);
    adAssert(lid < _shapes.size(), "layer id out of range");
    return _shapes[lid];
}

std::size_t
AtomicDag::macAtomCount() const
{
    std::size_t n = 0;
    for (const Atom &a : _atoms) {
        if (_graph.layer(a.layer).onPeArray())
            ++n;
    }
    return n;
}

Bytes
AtomicDag::memoryBytes() const
{
    // Element counts only: sizes are a pure function of the graph and
    // shapes, unlike vector capacities, which depend on growth history.
    Bytes bytes = sizeof(AtomicDag);
    bytes += _atoms.size() * sizeof(Atom);
    bytes += _shapes.size() * sizeof(TileShape);
    bytes += _depths.size() * sizeof(int);
    for (const auto &base : _layerBase)
        bytes += base.size() * sizeof(AtomId);
    bytes += _atomsPerSample.size() * sizeof(int);
    bytes += _depOffsets.size() * sizeof(std::int64_t);
    bytes += _depEdges.size() * sizeof(AtomId);
    bytes += _depEdgeBytes.size() * sizeof(Bytes);
    bytes += _consOffsets.size() * sizeof(std::int64_t);
    bytes += _consEdges.size() * sizeof(AtomId);
    bytes += _readsInput.size() / 8;
    bytes += _graph.size() * sizeof(graph::Layer);
    return bytes;
}

} // namespace ad::core
