#pragma once

/**
 * @file
 * Dijkstra-Through-Time (DTT) optimal Round search (ROADMAP item 3,
 * after the Nokia Bell Labs "Dijkstra-Through-Time" formulation):
 * shortest-path search over a time-indexed resource-state graph whose
 * vertices are (executed-atom set, previous-Round frontier) pairs and
 * whose edges are synchronized Rounds. Under the compute objective the
 * path cost is exactly the quantity check::bruteForceSchedule()
 * minimizes — the sum over Rounds of the slowest member — so on any DAG
 * where both are tractable the two must agree bit-for-bit, which is the
 * differential-oracle contract the test suite pins.
 *
 * The search is A* (Dijkstra + admissible lower bound): the heuristic is
 * the max of the remaining critical path (every dependency chain must
 * serialize across Rounds) and ceil(remaining-work / engines) (no Round
 * retires more than `engines` atoms). Both bounds are consistent, so the
 * first goal expansion is provably optimal and no state is re-expanded.
 *
 * Successor enumeration is pruned to *saturated* Rounds: a Round with
 * peak cost c either uses all engines or contains every ready atom of
 * cost <= c. An exchange argument shows some optimal solution uses only
 * saturated Rounds under the compute objective (adding a ready atom no
 * slower than the peak to a non-full Round never raises the Round cost
 * and only shrinks the remaining problem), so the pruning preserves
 * optimality while collapsing the 2^ready successor fan-out.
 *
 * Determinism contract: the search is single-threaded and every
 * container is ordered — the open list is a priority queue with a total
 * order on (f, executed, frontier, g, node id) value fields (never
 * hashes, never pointers), and the closed set is a std::map keyed by the
 * state pair. Results are therefore bit-identical across runs, across
 * `--threads` values, and across processes. dttStateKey() is the
 * canonical FNV-1a state fingerprint exposed for tests and provenance;
 * search order never depends on it.
 *
 * With `commAware` set, edge costs additionally charge an integer
 * surrogate for data movement (producer in the previous Round's
 * frontier -> NoC bytes, older producer -> HBM bytes, mirroring the
 * SRAM-residency x NoC-reservation state of the DTT paper). The
 * saturation pruning is not exchange-safe under that objective, so
 * commAware results are "optimal within the saturated-Round family" and
 * are never compared against the brute-force oracle.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "core/atomic_dag.hh"
#include "core/scheduler.hh"

namespace ad::core {

/** DTT search parameters. */
struct DttOptions
{
    /** Engines per Round (overwritten from the system by DttPlanner). */
    int engines = 64;

    /** Tractability gate: DAGs with more atoms than this (or more than
     * 63, the state-bitmask width) make dttSearch() return nullopt. */
    std::size_t maxAtoms = 28;

    /** Tractability gate on the per-state ready-set width (the
     * combination fan-out is C(ready-1, engines-1) per peak). */
    std::size_t maxReady = 18;

    /** Tractability gate on expanded (popped) states. */
    std::size_t maxExpandedStates = 250'000;

    /** Tractability gate on discovered (stored) states. */
    std::size_t maxStates = 1'000'000;

    /** Charge the communication surrogate into edge costs and keep the
     * previous Round's frontier in the state (see file comment). */
    bool commAware = false;

    /** HBM bytes deliverable per cycle (integer surrogate; only read
     * when commAware). */
    Bytes hbmBytesPerCycle = 256;

    /** NoC bytes deliverable per cycle chip-wide (integer surrogate;
     * only read when commAware). */
    Bytes nocBytesPerCycle = 512;
};

/** Outcome of one tractable DTT search. */
struct DttResult
{
    /** Optimal Round sequence; atom ids ascending within each Round. */
    RoundList rounds;

    /** Compute makespan of `rounds` (sum of per-Round max cycles) —
     * equals check::bruteForceSchedule().optimalMakespan whenever the
     * oracle is tractable and commAware is off. */
    Cycles makespan = 0;

    /** Objective actually minimized; equals `makespan` unless commAware
     * added communication surcharges. */
    Cycles cost = 0;

    /** States popped from the open list. */
    std::size_t expandedStates = 0;

    /** Distinct states discovered. */
    std::size_t discoveredStates = 0;

    /** Canonical dttStateKey() of the goal state (provenance). */
    std::uint64_t goalStateKey = 0;
};

/**
 * Canonical FNV-1a fingerprint of a search state: the executed-atom
 * bitmask and the previous-Round frontier bitmask, serialized
 * little-endian so the key is identical across hosts. Non-commAware
 * searches canonicalize the frontier to 0 before hashing.
 */
std::uint64_t dttStateKey(std::uint64_t executed, std::uint64_t frontier);

/**
 * Run the DTT search over @p dag with per-atom costs @p atom_cycles
 * (indexed by AtomId). Returns nullopt when any tractability gate in
 * @p options trips — callers fall back to a heuristic plan. Fatals on
 * malformed input (cycle vector mismatch, non-positive engine count).
 */
std::optional<DttResult> dttSearch(const AtomicDag &dag,
                                   const std::vector<Cycles> &atom_cycles,
                                   const DttOptions &options);

} // namespace ad::core
