#include "dtt_search.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <map>
#include <queue>
#include <string_view>
#include <utility>

#include "core/plan_io.hh"

namespace ad::core {

namespace {

constexpr std::uint32_t kNoParent =
    std::numeric_limits<std::uint32_t>::max();

/** Hard deterministic backstop on total edge relaxations: a state
 * whose combination fan-out explodes trips this and falls back rather
 * than crawling (checked between expansions, so overshoot is bounded
 * by one state's fan-out). */
constexpr std::uint64_t kMaxRelaxes = 8'000'000;

/** One discovered state with its best-known path. */
struct Node
{
    std::uint64_t executed = 0;
    std::uint64_t frontier = 0;
    Cycles g = 0;               ///< best path cost found so far
    std::uint32_t parent = kNoParent;
    std::uint64_t roundMask = 0; ///< Round taken from parent to here
};

/**
 * Open-list entry. The comparator is a total order over value fields
 * only — (f, executed, frontier, g, node) — so the pop sequence is
 * unique and bit-identical everywhere; no hash, pointer, or insertion
 * order ever breaks a tie.
 */
struct OpenEntry
{
    Cycles f = 0;
    std::uint64_t executed = 0;
    std::uint64_t frontier = 0;
    Cycles g = 0;
    std::uint32_t node = 0;
};

struct OpenGreater
{
    bool
    operator()(const OpenEntry &a, const OpenEntry &b) const
    {
        if (a.f != b.f)
            return a.f > b.f;
        if (a.executed != b.executed)
            return a.executed > b.executed;
        if (a.frontier != b.frontier)
            return a.frontier > b.frontier;
        if (a.g != b.g)
            return a.g > b.g;
        return a.node > b.node;
    }
};

/** The search, bundling precomputed bounds and the node store. */
class DttSearcher
{
  public:
    DttSearcher(const AtomicDag &dag,
                const std::vector<Cycles> &cycles,
                const DttOptions &options)
        : _dag(&dag), _cycles(&cycles), _options(options),
          _n(dag.size())
    {
        // down[a]: critical-path cycles of a's descendant chain,
        // a included — the serialization lower bound. Memoized DFS;
        // depth is bounded by _n <= 63.
        _down.assign(_n, 0);
        _downDone.assign(_n, false);
        for (std::size_t a = 0; a < _n; ++a)
            computeDown(static_cast<AtomId>(a));
        _totalCycles = 0;
        for (std::size_t a = 0; a < _n; ++a)
            _totalCycles += (*_cycles)[a];
    }

    std::optional<DttResult> run();

  private:
    Cycles
    computeDown(AtomId a)
    {
        const auto i = static_cast<std::size_t>(a);
        if (_downDone[i])
            return _down[i];
        Cycles best = 0;
        for (AtomId c : _dag->consumersSpan(a))
            best = std::max(best, computeDown(c));
        _down[i] = (*_cycles)[i] + best;
        _downDone[i] = true;
        return _down[i];
    }

    /** Admissible remaining-cost bound for @p executed. */
    Cycles
    lowerBound(std::uint64_t executed, Cycles executed_sum) const
    {
        Cycles chain = 0;
        for (std::size_t a = 0; a < _n; ++a) {
            if (!(executed & (std::uint64_t{1} << a)))
                chain = std::max(chain, _down[a]);
        }
        const Cycles remaining = _totalCycles - executed_sum;
        const Cycles width = ceilDiv(
            remaining, static_cast<Cycles>(_options.engines));
        return std::max(chain, width);
    }

    /** Integer communication surcharge of Round @p round_mask taken
     * from a state whose previous Round was @p frontier. */
    Cycles
    commCycles(std::uint64_t round_mask, std::uint64_t frontier) const
    {
        Bytes hbm = 0;
        Bytes noc = 0;
        for (std::size_t a = 0; a < _n; ++a) {
            if (!(round_mask & (std::uint64_t{1} << a)))
                continue;
            const auto deps = _dag->depsSpan(static_cast<AtomId>(a));
            const auto bytes =
                _dag->depBytesSpan(static_cast<AtomId>(a));
            for (std::size_t d = 0; d < deps.size(); ++d) {
                const auto p = static_cast<std::size_t>(deps[d]);
                if (frontier & (std::uint64_t{1} << p))
                    noc += bytes[d];
                else
                    hbm += bytes[d];
            }
        }
        return ceilDiv(hbm, _options.hbmBytesPerCycle) +
               ceilDiv(noc, _options.nocBytesPerCycle);
    }

    /** Find-or-create the node for (executed, frontier). */
    std::uint32_t
    internNode(std::uint64_t executed, std::uint64_t frontier)
    {
        const auto key = std::make_pair(executed, frontier);
        const auto it = _index.find(key);
        if (it != _index.end())
            return it->second;
        const auto id = static_cast<std::uint32_t>(_nodes.size());
        Node node;
        node.executed = executed;
        node.frontier = frontier;
        node.g = std::numeric_limits<Cycles>::max();
        _nodes.push_back(node);
        _index.emplace(key, id);
        return id;
    }

    const AtomicDag *_dag;
    const std::vector<Cycles> *_cycles;
    DttOptions _options;
    std::size_t _n;
    std::vector<Cycles> _down;
    std::vector<char> _downDone;
    Cycles _totalCycles = 0;

    std::vector<Node> _nodes;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t>
        _index;
    std::uint64_t _relaxes = 0;
};

std::optional<DttResult>
DttSearcher::run()
{
    const std::uint64_t full =
        (_n == 64) ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << _n) - 1);
    const std::uint32_t root = internNode(0, 0);
    _nodes[root].g = 0;

    std::priority_queue<OpenEntry, std::vector<OpenEntry>, OpenGreater>
        open;
    open.push({lowerBound(0, 0), 0, 0, 0, root});

    DttResult result;
    std::vector<std::size_t> ready;
    ready.reserve(_n);

    while (!open.empty()) {
        const OpenEntry top = open.top();
        open.pop();
        if (top.g != _nodes[top.node].g)
            continue; // stale entry; a cheaper path superseded it
        const std::uint64_t executed = top.executed;
        const std::uint64_t frontier = top.frontier;

        if (executed == full) {
            // Consistent heuristic: the first goal pop is optimal.
            result.cost = top.g;
            result.goalStateKey = dttStateKey(executed, frontier);
            RoundList rounds;
            for (std::uint32_t at = top.node;
                 _nodes[at].parent != kNoParent;
                 at = _nodes[at].parent) {
                std::vector<AtomId> round;
                const std::uint64_t mask = _nodes[at].roundMask;
                for (std::size_t a = 0; a < _n; ++a) {
                    if (mask & (std::uint64_t{1} << a))
                        round.push_back(static_cast<AtomId>(a));
                }
                rounds.push_back(std::move(round));
            }
            std::reverse(rounds.begin(), rounds.end());
            for (const auto &round : rounds) {
                Cycles slowest = 0;
                for (AtomId a : round) {
                    slowest = std::max(
                        slowest,
                        (*_cycles)[static_cast<std::size_t>(a)]);
                }
                result.makespan += slowest;
            }
            result.rounds = std::move(rounds);
            result.expandedStates += 1;
            result.discoveredStates = _nodes.size();
            return result;
        }

        result.expandedStates += 1;
        if (result.expandedStates > _options.maxExpandedStates)
            return std::nullopt;

        // Ready set (ids ascending) and executed work, in one scan.
        Cycles executed_sum = 0;
        ready.clear();
        for (std::size_t a = 0; a < _n; ++a) {
            if (executed & (std::uint64_t{1} << a)) {
                executed_sum += (*_cycles)[a];
                continue;
            }
            bool ok = true;
            for (AtomId dep : _dag->depsSpan(static_cast<AtomId>(a))) {
                if (!(executed &
                      (std::uint64_t{1}
                       << static_cast<std::size_t>(dep)))) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                ready.push_back(a);
        }
        adAssert(!ready.empty(), "DTT deadlock: cyclic atomic DAG");
        if (ready.size() > _options.maxReady)
            return std::nullopt;

        // Sort by (cycles desc, id asc): each Round's peak is then the
        // smallest included index, so enumerating per-peak suffixes and
        // combinations covers every saturated Round exactly once.
        std::sort(ready.begin(), ready.end(),
                  [this](std::size_t a, std::size_t b) {
                      if ((*_cycles)[a] != (*_cycles)[b])
                          return (*_cycles)[a] > (*_cycles)[b];
                      return a < b;
                  });

        const auto engines =
            static_cast<std::size_t>(_options.engines);
        const auto relax = [&](std::uint64_t round_mask,
                               Cycles peak_cycles,
                               std::uint32_t from) {
            ++_relaxes;
            Cycles edge = peak_cycles;
            std::uint64_t next_frontier = 0;
            if (_options.commAware) {
                edge += commCycles(round_mask, frontier);
                next_frontier = round_mask;
            }
            const std::uint64_t next_executed =
                executed | round_mask;
            const std::uint32_t to =
                internNode(next_executed, next_frontier);
            const Cycles g = _nodes[from].g + edge;
            if (g < _nodes[to].g) {
                _nodes[to].g = g;
                _nodes[to].parent = from;
                _nodes[to].roundMask = round_mask;
                Cycles next_sum = executed_sum;
                for (std::size_t a = 0; a < _n; ++a) {
                    if (round_mask & (std::uint64_t{1} << a))
                        next_sum += (*_cycles)[a];
                }
                open.push({g + lowerBound(next_executed, next_sum),
                           next_executed, next_frontier, g, to});
            }
        };

        for (std::size_t i = 0; i < ready.size(); ++i) {
            const Cycles peak = (*_cycles)[ready[i]];
            const std::size_t tail = ready.size() - i;
            if (tail <= engines) {
                // The whole suffix fits in one Round. If it leaves
                // engines idle while an equal-cost atom sits excluded
                // before the peak, the Round is dominated (swap the
                // equal atom in for free) — skip it.
                const bool equal_before =
                    i > 0 && (*_cycles)[ready[i - 1]] == peak;
                if (tail < engines && equal_before)
                    continue;
                std::uint64_t mask = 0;
                for (std::size_t j = i; j < ready.size(); ++j)
                    mask |= std::uint64_t{1} << ready[j];
                relax(mask, peak, top.node);
                continue;
            }
            // Saturated Rounds of exactly `engines` atoms: the peak
            // plus engines-1 chosen from the cheaper suffix, in
            // lexicographic order over sorted indices.
            std::vector<std::size_t> choose(engines - 1);
            for (std::size_t k = 0; k < choose.size(); ++k)
                choose[k] = i + 1 + k;
            while (true) {
                std::uint64_t mask = std::uint64_t{1} << ready[i];
                for (const std::size_t c : choose)
                    mask |= std::uint64_t{1} << ready[c];
                relax(mask, peak, top.node);
                // Advance the combination (rightmost incrementable).
                std::size_t k = choose.size();
                while (k > 0 &&
                       choose[k - 1] ==
                           ready.size() - (choose.size() - (k - 1)))
                    --k;
                if (k == 0)
                    break;
                ++choose[k - 1];
                for (std::size_t j = k; j < choose.size(); ++j)
                    choose[j] = choose[j - 1] + 1;
            }
        }
        if (_nodes.size() > _options.maxStates ||
            _relaxes > kMaxRelaxes)
            return std::nullopt;
    }
    fatal("DTT search exhausted the open list without reaching the "
          "goal — the atomic DAG is malformed");
}

} // namespace

std::uint64_t
dttStateKey(std::uint64_t executed, std::uint64_t frontier)
{
    char buf[16];
    for (int i = 0; i < 8; ++i) {
        buf[i] = static_cast<char>((executed >> (8 * i)) & 0xFF);
        buf[8 + i] = static_cast<char>((frontier >> (8 * i)) & 0xFF);
    }
    return fnv1a64(std::string_view(buf, sizeof(buf)));
}

std::optional<DttResult>
dttSearch(const AtomicDag &dag, const std::vector<Cycles> &atom_cycles,
          const DttOptions &options)
{
    if (options.engines <= 0)
        fatal("dttSearch requires a positive engine count");
    adAssert(atom_cycles.size() == dag.size(),
             "atom cycle vector does not cover the DAG");
    if (dag.size() == 0) {
        DttResult empty;
        empty.goalStateKey = dttStateKey(0, 0);
        return empty;
    }
    if (dag.size() > options.maxAtoms || dag.size() > 63)
        return std::nullopt;

    DttSearcher searcher(dag, atom_cycles, options);
    return searcher.run();
}

} // namespace ad::core
