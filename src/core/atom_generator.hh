#pragma once

/**
 * @file
 * Atomic tensor generation: choose per-layer atom tile shapes so that all
 * atoms have near-equal single-engine execution cycles (Sec. IV-A).
 *
 * The primary algorithm is the paper's simulated-annealing search
 * (Algorithm 1); a genetic-algorithm searcher is provided as the
 * comparison point of Fig. 5(b).
 */

#include <vector>

#include "core/shape_catalog.hh"
#include "util/random.hh"

namespace ad::core {

/** Result of one atom-generation run. */
struct GenerationResult
{
    std::vector<TileShape> shapes;  ///< per-layer tile shapes (by LayerId)
    double meanCycles = 0.0;        ///< mean atom cycles at the solution
    double finalVariance = 0.0;     ///< normalized Var (E / mean^2)
    double meanUtilization = 0.0;   ///< MAC-layer PE utilization, unweighted
    std::vector<double> varianceTrace; ///< per-iteration energy (Fig. 5b)
    int iterations = 0;             ///< iterations actually executed
    int acceptedMoves = 0;          ///< moves the Metropolis rule kept

    // Surrogate screening telemetry (zero for unscreened catalogs).
    bool screened = false;   ///< search ran over a screened catalog
    int screenRejects = 0;   ///< moves the surrogate tier filtered out
    int confirmRejects = 0;  ///< surrogate-passed moves exact re-score refused
    int exactRescores = 0;   ///< exact energy evaluations performed
};

/** Parameters of Algorithm 1. */
struct SaOptions
{
    int maxIterations = 600;     ///< ite_max
    double moveLength = 0.25;    ///< Len, as a fraction of current S
    double epsilon = 1e-4;       ///< convergence threshold on energy
    double initialTemp = 1.0;    ///< Temp
    double lambda = 0.995;       ///< temperature decay
    std::uint64_t seed = 1;
};

/**
 * Simulated-annealing atom generator (Algorithm 1).
 *
 * System state S is the unified execution cycle every atom targets;
 * energy E is the variance of per-layer atom cycles normalized by the
 * squared mean (so temperatures are workload-independent).
 */
class SaAtomGenerator
{
  public:
    /** Create a generator with @p options. */
    explicit SaAtomGenerator(SaOptions options = {});

    /** Run the search over @p catalog. */
    GenerationResult generate(const ShapeCatalog &catalog) const;

  private:
    SaOptions _options;
};

/** Parameters of the GA comparator. */
struct GaOptions
{
    int generations = 600;
    int population = 24;
    double mutationRate = 0.08;
    double crossoverRate = 0.7;
    int tournament = 3;
    std::uint64_t seed = 1;
};

/**
 * Genetic-algorithm atom generator, the baseline of Fig. 5(b). Genomes
 * are per-layer candidate indices into the shape catalog.
 */
class GaAtomGenerator
{
  public:
    /** Create a generator with @p options. */
    explicit GaAtomGenerator(GaOptions options = {});

    /** Run the search over @p catalog. */
    GenerationResult generate(const ShapeCatalog &catalog) const;

  private:
    GaOptions _options;
};

/**
 * Normalized variance (Var / mean^2) of the per-layer atom cycles induced
 * by per-layer candidate @p indices. Shared by both searchers and the
 * tests.
 */
double shapeEnergy(const ShapeCatalog &catalog,
                   const std::vector<std::size_t> &indices,
                   double *mean_out = nullptr);

/**
 * shapeEnergy over ground-truth cycles: identical to shapeEnergy for an
 * unscreened catalog, and computed from ShapeCatalog::exactCycles for a
 * screened one. The SA confirm tier re-scores every surrogate-passed
 * move with this before it may change the plan, so the returned shapes
 * are always exact-model-scored.
 */
double exactShapeEnergy(const ShapeCatalog &catalog,
                        const std::vector<std::size_t> &indices,
                        double *mean_out = nullptr);

} // namespace ad::core
