#pragma once

/**
 * @file
 * Naive even partitioning of layers into a fixed tile count — the
 * strategy Layer-Sequential scheduling uses (Sec. II-B) and the
 * atom-generation ablation point of Fig. 10. Tiles are split along
 * H/W/C without regard to the PE-array geometry, which is exactly the
 * task-engine mismatch the paper measures in Fig. 2.
 */

#include <vector>

#include "core/atom.hh"
#include "graph/graph.hh"

namespace ad::core {

/** How the naive even partition divides a layer. */
enum class PartitionPolicy {
    /**
     * Output channels first (NVDLA/TETRIS multi-engine convention: each
     * engine owns a distinct filter group), then spatial dims. This is
     * what makes LS tiles stop aligning with the PE array — the
     * task-engine mismatch of Fig. 2.
     */
    ChannelFirst,
    /** Largest dimension first (spatial-leaning balanced split). */
    Balanced,
};

/**
 * Tile shapes that split every layer of @p graph into (at least)
 * @p tiles pieces under @p policy.
 */
std::vector<TileShape> evenPartitionShapes(
    const graph::Graph &graph, int tiles,
    PartitionPolicy policy = PartitionPolicy::ChannelFirst);

} // namespace ad::core
