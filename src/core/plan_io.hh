#pragma once

/**
 * @file
 * Versioned binary serialization of PlanResult — the payload format of
 * the serving layer's persistent plan store (serve::PlanStore).
 *
 * A PlanResult is a pure function of its planning inputs (the PR 1
 * determinism contract), and the AtomicDag itself is a pure function of
 * (graph, tile shapes, batch, bytesPerElem). The encoding therefore
 * stores the DAG *constructively* — the adgraph text plus the per-layer
 * shapes and construction options — and decodePlanResult() rebuilds it
 * through the regular AtomicDag constructor, so a decoded plan is not
 * merely equal to the original: it is the same deterministic object a
 * fresh compile would have produced. Schedule and ExecutionReport are
 * stored field by field, doubles as IEEE-754 bit patterns, so reports
 * survive the round trip bitIdentical().
 *
 * The format is little-endian, length-prefixed, and versioned by
 * kPlanFormatVersion; decodePlanResult() treats *any* malformed input —
 * truncation, trailing garbage, impossible counts, an unparseable
 * graph — as a clean failure (nullopt), never a crash. Integrity
 * against bit flips is the caller's job (PlanStore checksums the whole
 * payload with fnv1a64 before attempting a decode).
 */

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/planner.hh"

namespace ad::core {

/** Bump on any change to the encodePlanResult() byte layout (version 2
 * widened the valid SchedMode range with SchedMode::Dtt, so a v1 reader
 * would reject v2 plans as corrupt — the intended failure mode). */
constexpr std::uint32_t kPlanFormatVersion = 2;

/**
 * FNV-1a 64-bit over @p bytes: the project's explicit, portable content
 * hash (never std::hash, whose value is implementation-defined). Used
 * for plan-store filenames and payload checksums.
 */
std::uint64_t fnv1a64(std::string_view bytes);

/**
 * Serialize @p plan to the version-kPlanFormatVersion binary payload.
 * searchSeconds is deliberately dropped: it is host wall time, excluded
 * from every determinism comparison, and a hydrated plan reports 0.
 */
std::string encodePlanResult(const PlanResult &plan);

/**
 * Decode a payload produced by encodePlanResult(). Returns nullopt on
 * any structural problem (truncation, bad counts, trailing bytes, a
 * graph that fails to parse or a DAG that fails to rebuild); never
 * throws and never aborts.
 */
std::optional<PlanResult> decodePlanResult(std::string_view payload);

} // namespace ad::core
