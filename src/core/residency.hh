#pragma once

/**
 * @file
 * Compile-time model of the distributed on-chip buffers plus the paper's
 * buffering strategy (Algorithm 3).
 *
 * Both the mapping pass and the system simulator walk the schedule with
 * an identical ResidencyTracker so placement decisions and execution
 * accounting agree on what is on-chip at every Round.
 */

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/atom.hh"
#include "core/atomic_dag.hh"
#include "core/schedule.hh"
#include "mem/sram_buffer.hh"

namespace ad::core {

/** Where a tensor slice can be found when a consumer needs it. */
enum class Location { OffChip, OnChip };

/** Result of looking up one dependency. */
struct SourceInfo
{
    Location location = Location::OffChip;
    int engine = -1; ///< holder engine when on-chip
    Bytes bytes = 0; ///< slice size
};

/** One eviction decided by the buffer planner. */
struct Eviction
{
    AtomId atom = kNoAtom;
    Bytes bytes = 0;
    bool writeBack = false; ///< false: dead data, dropped silently
};

/**
 * Tracks which atom ofmaps and which layer weight slices reside in each
 * engine's buffer as the schedule advances Round by Round.
 */
class ResidencyTracker
{
  public:
    /**
     * Track @p engines buffers of @p buffer_bytes each over @p dag.
     * Weight slices larger than @p max_resident_weight are streamed from
     * DRAM (double-buffered) instead of parking in the buffer, so bulky
     * weights cannot evict soon-needed feature-map tiles.
     */
    ResidencyTracker(const AtomicDag &dag, int engines,
                     Bytes buffer_bytes,
                     Bytes max_resident_weight = 96 * 1024);

    /** Precompute exact next-use data from a fixed round sequence. */
    void attachSchedule(const std::vector<std::vector<AtomId>> &rounds);

    /** Look up where @p atom's ofmap currently lives. */
    SourceInfo locate(AtomId atom) const;

    /** True when the weight slice (@p layer, @p slice) is resident on
     * @p engine. Slices are identified by the atom's starting output
     * channel. */
    bool weightsResident(graph::LayerId layer, int slice,
                         int engine) const;

    /** Any engine currently holding the slice (-1 when none): a consumer
     * on another engine can copy it over the NoC instead of the HBM. */
    int weightHolder(graph::LayerId layer, int slice) const;

    /** Mark a weight slice resident on @p engine (after an HBM fetch or
     * NoC copy), evicting via Algorithm 3 if needed. */
    std::vector<Eviction> installWeights(graph::LayerId layer, int slice,
                                         int engine, Bytes bytes,
                                         int now_round);

    /**
     * Store @p atom's ofmap on @p engine at @p now_round, evicting via
     * Algorithm 3 when the buffer overflows. Atoms that are never used
     * again are not stored at all.
     */
    std::vector<Eviction> produce(AtomId atom, int engine, int now_round);

    /**
     * Advance to @p round: residents whose last use has passed are
     * released without write-back (Algorithm 3 line 8-12).
     */
    void beginRound(int round);

    /** Earliest consumer round of @p atom strictly after @p now. */
    int nextUseAfter(AtomId atom, int now) const;

    /** Earliest round after @p now in which any atom of @p layer runs
     * (weight-residency lifetime). */
    int nextLayerUseAfter(graph::LayerId layer, int now) const;

    /** Buffer occupancy of @p engine in bytes. */
    Bytes used(int engine) const;

    /** Number of engines tracked. */
    int engines() const { return static_cast<int>(_buffers.size()); }

    /** Diagnostic: weight installs rejected for lack of space. */
    mutable std::uint64_t installFailures = 0;

  private:
    /** Pick the victim with maximum invalid occupation (Alg. 3 line 13-17)
     * and evict it; returns the eviction, or atom==kNoAtom if the buffer
     * holds nothing evictable. */
    Eviction evictOne(int engine, int now_round);

    /** Free space for @p bytes on @p engine. */
    std::vector<Eviction> makeRoom(int engine, Bytes bytes, int now_round);

    static mem::ResidentKey atomKey(AtomId atom);
    static mem::ResidentKey weightKey(graph::LayerId layer, int slice);
    static graph::LayerId layerOfWeightKey(mem::ResidentKey key);

    void forgetWeight(mem::ResidentKey key, int engine);

    const AtomicDag *_dag;
    std::vector<mem::SramBuffer> _buffers;
    std::vector<int> _atomHome;   ///< engine holding each atom, -1 if none
    /// Consumer rounds per atom, ascending.
    std::vector<std::vector<int>> _useRounds;
    /// Rounds in which each layer has atoms scheduled, ascending.
    std::vector<std::vector<int>> _layerRounds;
    /// Engines holding each weight slice.
    std::unordered_map<mem::ResidentKey, std::vector<int>> _sliceHolders;
    Bytes _maxResidentWeight;
};

} // namespace ad::core
