#pragma once

/**
 * @file
 * The atom: the paper's graph-level scheduling unit (Sec. III).
 *
 * An atom is one output tile of one DNN layer for one batch sample:
 * Atom_{l,x,(b)} : [(h_s,h_e), (w_s,w_e), (c_s,c_e)]. Tiles partition the
 * output feature map; input channels are consumed whole per atom, which
 * keeps atom-level dependencies free of partial-sum accumulation (see
 * DESIGN.md Sec. 5 for this simplification of the paper's (c^i_s, c^i_e)
 * range).
 */

#include <cstdint>

#include "engine/cost_model.hh"
#include "graph/layer.hh"

namespace ad::core {

/** Dense atom index within one AtomicDag. */
using AtomId = std::int32_t;

/** Sentinel for "no atom". */
constexpr AtomId kNoAtom = -1;

/** Output-tile sizes chosen for one layer by the atom generator. */
struct TileShape
{
    int h = 1; ///< tile height (h_p)
    int w = 1; ///< tile width (w_p)
    int c = 1; ///< tile output channels (c^o_p)

    bool operator==(const TileShape &) const = default;
};

/** One schedulable unit: a layer output tile of one batch sample. */
struct Atom
{
    AtomId id = kNoAtom;
    graph::LayerId layer = graph::kNoLayer;
    int batch = 0;  ///< input-sample index b
    int index = 0;  ///< x: linear tile index within (layer, batch)

    // Output tile ranges, [start, end) convention.
    int hs = 0, he = 0;
    int ws = 0, we = 0;
    int cs = 0, ce = 0;

    /** Tile height. */
    int tileH() const { return he - hs; }

    /** Tile width. */
    int tileW() const { return we - ws; }

    /** Tile output channels. */
    int tileC() const { return ce - cs; }

    /** Output elements of this atom. */
    std::int64_t
    outElems() const
    {
        return static_cast<std::int64_t>(tileH()) * tileW() * tileC();
    }
};

} // namespace ad::core
