#pragma once

/**
 * @file
 * Per-layer catalog of feasible atom tile shapes and their single-engine
 * execution cycles.
 *
 * Sec. IV-A constrains the spatially-unrolled tile dimensions to be
 * multiples of the PE array (coefficients c2*PEx / c3*PEy for KC-P); the
 * catalog enforces the constraint matching the configured dataflow,
 * pre-evaluates every candidate with the engine cost model, and serves
 * the argmin |Cycle(Atom_l) - S| query of Algorithm 1 (line 13) by binary
 * search over cycles.
 */

#include <vector>

#include "core/atom.hh"
#include "engine/cost_model.hh"
#include "graph/graph.hh"

namespace ad::core {

/** One feasible tile shape with its pre-computed engine cost. */
struct ShapeCandidate
{
    TileShape shape;
    Cycles cycles = 0;        ///< single-engine execution cycles
    double utilization = 0.0; ///< PE utilization (0 for vector ops)
    Bytes footprint = 0;      ///< buffer residency (weights streamed)
    /** Weight bytes replicated across engines because several spatial
     * tiles share one filter slice: slice x (spatial tiles - 1). */
    Bytes weightReplBytes = 0;
    /** Expected per-sample weight movement: replication when the slice
     * can stay resident, a full refetch per tile when it cannot. */
    Bytes weightTraffic = 0;
};

/** Catalog construction options. */
struct ShapeCatalogOptions
{
    /** Weight working-set assumed streamable (double-buffered chunks). */
    Bytes weightWorkingSet = 32 * 1024;
    /** Largest weight slice the buffers can keep resident (matches
     * ResidencyTracker's default cap). */
    Bytes residentWeightCap = 96 * 1024;
    /** Cap on tile counts tried per output dimension. */
    int maxSplitsPerDim = 12;
    int bytesPerElem = 1;
};

/** Immutable catalog for one (graph, engine, dataflow) combination. */
class ShapeCatalog
{
  public:
    /**
     * Enumerate and cost all candidates for every layer of @p graph.
     *
     * When @p exact is non-null the catalog is *surrogate-screened*:
     * @p model (typically engine::SurrogateCostModel) prices the
     * candidate enumeration and steers the search, while @p exact
     * serves lazy ground-truth re-scoring through exactCycles() — the
     * screen/confirm contract of DESIGN.md Sec. 17. Both models must
     * outlive the catalog.
     */
    ShapeCatalog(const graph::Graph &graph,
                 const engine::CostModel &model,
                 const ShapeCatalogOptions &options = {},
                 const engine::CostModel *exact = nullptr);

    /** True when candidate cycles come from a screening surrogate. */
    bool screened() const { return _exactModel != nullptr; }

    /**
     * Ground-truth cycles of candidate @p idx of @p layer. Identical to
     * the candidate's cycles for an unscreened catalog; for a screened
     * one the exact model is consulted lazily and memoized. Not thread-
     * safe — confirm phases run on the search thread.
     */
    Cycles exactCycles(graph::LayerId layer, std::size_t idx) const;

    /**
     * The engine workload a tile of @p shape induces for @p layer —
     * the single place the (layer, shape) -> atom convention lives, so
     * catalog costing and exact re-scoring can never disagree on it.
     */
    static engine::AtomWorkload workloadFor(const graph::Layer &layer,
                                            const TileShape &shape);

    /** Candidates of @p layer, sorted by ascending cycles. Empty for
     * Input/Concat layers. */
    const std::vector<ShapeCandidate> &candidatesFor(
        graph::LayerId layer) const;

    /** Candidate whose cycles are closest to @p target_cycles. */
    const ShapeCandidate &nearest(graph::LayerId layer,
                                  double target_cycles) const;

    /** Index (into candidatesFor) of the nearest candidate. */
    std::size_t nearestIndex(graph::LayerId layer,
                             double target_cycles) const;

    /** Shape vector assembled from per-layer candidate indices. */
    std::vector<TileShape> shapesFromIndices(
        const std::vector<std::size_t> &indices) const;

    /** Default shape vector: per-layer candidate with best utilization. */
    std::vector<TileShape> defaultShapes() const;

    /** The graph this catalog was built for. */
    const graph::Graph &graph() const { return *_graph; }

    /** The cost model used. */
    const engine::CostModel &model() const { return *_model; }

  private:
    void buildLayer(const graph::Layer &layer);
    std::vector<int> splitSizes(int dim, int quantum) const;

    const graph::Graph *_graph;
    const engine::CostModel *_model;
    const engine::CostModel *_exactModel; ///< null when unscreened
    ShapeCatalogOptions _options;
    std::vector<std::vector<ShapeCandidate>> _catalog;
    /** Lazy exact-cycle memo parallel to _catalog; 0 = not yet scored
     * (real cycles are always positive: configCycles floor). */
    mutable std::vector<std::vector<Cycles>> _exactCycles;
};

} // namespace ad::core
