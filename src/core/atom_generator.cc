#include "atom_generator.hh"

#include <algorithm>
#include <cmath>

#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace ad::core {

namespace {

/** Layers that participate in load balancing (those with candidates). */
std::vector<graph::LayerId>
activeLayers(const ShapeCatalog &catalog)
{
    std::vector<graph::LayerId> layers;
    for (const graph::Layer &l : catalog.graph().layers()) {
        if (!catalog.candidatesFor(l.id).empty())
            layers.push_back(l.id);
    }
    return layers;
}

/** Mean utilization across MAC layers for the chosen indices. */
double
meanUtilization(const ShapeCatalog &catalog,
                const std::vector<std::size_t> &indices)
{
    RunningStats util;
    for (const graph::Layer &l : catalog.graph().layers()) {
        if (!l.onPeArray())
            continue;
        const auto &cands = catalog.candidatesFor(l.id);
        if (cands.empty())
            continue;
        util.add(cands[indices[static_cast<std::size_t>(l.id)]]
                     .utilization);
    }
    return util.mean();
}

} // namespace

double
shapeEnergy(const ShapeCatalog &catalog,
            const std::vector<std::size_t> &indices, double *mean_out)
{
    RunningStats cycles;
    for (const graph::Layer &l : catalog.graph().layers()) {
        const auto &cands = catalog.candidatesFor(l.id);
        if (cands.empty())
            continue;
        cycles.add(static_cast<double>(
            cands[indices[static_cast<std::size_t>(l.id)]].cycles));
    }
    if (mean_out)
        *mean_out = cycles.mean();
    const double mean = cycles.mean();
    if (mean <= 0.0)
        return 0.0;
    return cycles.variance() / (mean * mean);
}

double
exactShapeEnergy(const ShapeCatalog &catalog,
                 const std::vector<std::size_t> &indices,
                 double *mean_out)
{
    RunningStats cycles;
    for (const graph::Layer &l : catalog.graph().layers()) {
        if (catalog.candidatesFor(l.id).empty())
            continue;
        cycles.add(static_cast<double>(catalog.exactCycles(
            l.id, indices[static_cast<std::size_t>(l.id)])));
    }
    if (mean_out)
        *mean_out = cycles.mean();
    const double mean = cycles.mean();
    if (mean <= 0.0)
        return 0.0;
    return cycles.variance() / (mean * mean);
}

SaAtomGenerator::SaAtomGenerator(SaOptions options)
    : _options(options)
{}

GenerationResult
SaAtomGenerator::generate(const ShapeCatalog &catalog) const
{
    Rng rng(_options.seed);
    const auto layers = activeLayers(catalog);
    const std::size_t n = catalog.graph().size();

    // Line 1-3: random initial coefficients per layer.
    std::vector<std::size_t> indices(n, 0);
    for (graph::LayerId l : layers) {
        const auto &cands = catalog.candidatesFor(l);
        indices[static_cast<std::size_t>(l)] = static_cast<std::size_t>(
            rng.uniformInt(0,
                           static_cast<std::int64_t>(cands.size()) - 1));
    }

    // Line 5-7: initial state S = mean cycle, initial energy E = Var.
    double mean = 0.0;
    double energy = shapeEnergy(catalog, indices, &mean);
    double state = mean;
    double temp = _options.initialTemp;

    GenerationResult result;
    result.varianceTrace.reserve(
        static_cast<std::size_t>(_options.maxIterations));

    // Screened catalogs price candidates with a surrogate; the search
    // then runs two Metropolis tiers per move — a cheap screen on the
    // surrogate energy and, only for moves that survive it, a confirm
    // on the ground-truth energy. Both tiers consume the SAME uniform
    // draw, so the RNG sequence (two draws per iteration) is identical
    // to the unscreened search and screening can be flipped without
    // perturbing any other stochastic decision.
    const bool screened = catalog.screened();
    result.screened = screened;
    double energy_exact = energy;
    if (screened) {
        energy_exact = exactShapeEnergy(catalog, indices, nullptr);
        ++result.exactRescores;
    }

    std::vector<std::size_t> best = indices;
    double best_energy = screened ? energy_exact : energy;

    std::vector<std::size_t> moved(n, 0);
    for (int ite = 0; ite < _options.maxIterations; ++ite) {
        result.varianceTrace.push_back(energy);
        result.iterations = ite + 1;
        if (energy <= _options.epsilon)
            break; // Line 23: converged.

        // Line 10: neighboring state.
        const double len = _options.moveLength * std::max(state, 1.0);
        const double state_move =
            std::max(1.0, state + rng.uniform(-1.0, 1.0) * len);

        // Line 11-14: snap every layer to the candidate nearest S_move.
        // The snap is a pure per-layer lookup (no RNG draws), so it fans
        // out across the pool without disturbing the annealing sequence;
        // each index writes only its own `moved` slot.
        moved = indices;
        util::ThreadPool::global().parallelFor(
            layers.size(), [&](std::size_t i) {
                moved[static_cast<std::size_t>(layers[i])] =
                    catalog.nearestIndex(layers[i], state_move);
            });
        const double energy_move = shapeEnergy(catalog, moved, nullptr);

        // Line 16-21: Metropolis acceptance with decaying temperature.
        temp *= _options.lambda;
        const double delta = energy - energy_move;
        const double p =
            delta >= 0 ? 1.0
                       : std::exp(delta / (_options.lambda *
                                           std::max(temp, 1e-12)));
        const double u = rng.uniform();
        if (u > p) {
            if (screened)
                ++result.screenRejects;
            continue;
        }
        if (screened) {
            // Confirm tier: the exact re-score decides. An accepted
            // move can therefore never enter the plan on surrogate
            // numbers alone.
            const double exact_move =
                exactShapeEnergy(catalog, moved, nullptr);
            ++result.exactRescores;
            const double delta_exact = energy_exact - exact_move;
            const double p_exact =
                delta_exact >= 0
                    ? 1.0
                    : std::exp(delta_exact /
                               (_options.lambda *
                                std::max(temp, 1e-12)));
            if (u > p_exact) {
                ++result.confirmRejects;
                continue;
            }
            energy_exact = exact_move;
        }
        ++result.acceptedMoves;
        state = state_move;
        energy = energy_move;
        indices = moved;
        const double tracked = screened ? energy_exact : energy;
        if (tracked < best_energy) {
            best_energy = tracked;
            best = indices;
        }
    }

    result.shapes = catalog.shapesFromIndices(best);
    result.finalVariance = best_energy;
    if (screened)
        exactShapeEnergy(catalog, best, &result.meanCycles);
    else
        shapeEnergy(catalog, best, &result.meanCycles);
    result.meanUtilization = meanUtilization(catalog, best);
    return result;
}

GaAtomGenerator::GaAtomGenerator(GaOptions options)
    : _options(options)
{}

GenerationResult
GaAtomGenerator::generate(const ShapeCatalog &catalog) const
{
    Rng rng(_options.seed);
    const auto layers = activeLayers(catalog);
    const std::size_t n = catalog.graph().size();

    auto random_genome = [&]() {
        std::vector<std::size_t> g(n, 0);
        for (graph::LayerId l : layers) {
            const auto &cands = catalog.candidatesFor(l);
            g[static_cast<std::size_t>(l)] = static_cast<std::size_t>(
                rng.uniformInt(
                    0, static_cast<std::int64_t>(cands.size()) - 1));
        }
        return g;
    };

    std::vector<std::vector<std::size_t>> pop;
    pop.reserve(static_cast<std::size_t>(_options.population));
    for (int i = 0; i < _options.population; ++i)
        pop.push_back(random_genome());
    std::vector<double> fitness =
        util::ThreadPool::global().parallelMap<double>(
            pop.size(), [&](std::size_t i) {
                return shapeEnergy(catalog, pop[i], nullptr);
            });

    auto tournament = [&]() -> std::size_t {
        std::size_t winner = static_cast<std::size_t>(
            rng.uniformInt(0, _options.population - 1));
        for (int i = 1; i < _options.tournament; ++i) {
            const auto rival = static_cast<std::size_t>(
                rng.uniformInt(0, _options.population - 1));
            if (fitness[rival] < fitness[winner])
                winner = rival;
        }
        return winner;
    };

    GenerationResult result;
    std::size_t best_idx = static_cast<std::size_t>(
        std::min_element(fitness.begin(), fitness.end()) -
        fitness.begin());
    std::vector<std::size_t> best = pop[best_idx];
    double best_energy = fitness[best_idx];

    for (int gen = 0; gen < _options.generations; ++gen) {
        // Trace the current population's best (not best-so-far): without
        // elitism, mutation makes this rise and fall — the behaviour
        // Fig. 5(b) shows for GA.
        result.varianceTrace.push_back(fitness[best_idx]);
        result.iterations = gen + 1;

        // Breed sequentially (every RNG draw stays in the serial order),
        // then fan the fitness evaluations out: shapeEnergy draws no
        // randomness, so the split is behaviour-identical.
        std::vector<std::vector<std::size_t>> next;
        next.reserve(pop.size());

        while (next.size() < pop.size()) {
            auto child = pop[tournament()];
            if (rng.chance(_options.crossoverRate)) {
                const auto &other = pop[tournament()];
                for (graph::LayerId l : layers) {
                    if (rng.chance(0.5)) {
                        child[static_cast<std::size_t>(l)] =
                            other[static_cast<std::size_t>(l)];
                    }
                }
            }
            for (graph::LayerId l : layers) {
                if (rng.chance(_options.mutationRate)) {
                    const auto &cands = catalog.candidatesFor(l);
                    child[static_cast<std::size_t>(l)] =
                        static_cast<std::size_t>(rng.uniformInt(
                            0,
                            static_cast<std::int64_t>(cands.size()) - 1));
                }
            }
            next.push_back(std::move(child));
        }
        std::vector<double> next_fitness =
            util::ThreadPool::global().parallelMap<double>(
                next.size(), [&](std::size_t i) {
                    return shapeEnergy(catalog, next[i], nullptr);
                });
        pop = std::move(next);
        fitness = std::move(next_fitness);

        best_idx = static_cast<std::size_t>(
            std::min_element(fitness.begin(), fitness.end()) -
            fitness.begin());
        if (fitness[best_idx] < best_energy) {
            best_energy = fitness[best_idx];
            best = pop[best_idx];
        }
    }

    result.shapes = catalog.shapesFromIndices(best);
    result.finalVariance = best_energy;
    shapeEnergy(catalog, best, &result.meanCycles);
    result.meanUtilization = meanUtilization(catalog, best);
    return result;
}

} // namespace ad::core
