#pragma once

/**
 * @file
 * The compile-time scheduling artifact: atoms grouped into synchronized
 * Rounds (Sec. III), each atom bound to one engine by the mapping pass.
 */

#include <vector>

#include "core/atom.hh"

namespace ad::core {

/** Scheduling algorithm selector (Fig. 10 ablation points). */
enum class SchedMode {
    LayerOrder,   ///< atoms in strict (sample, layer) order — no rules
    LayerBatched, ///< (layer, sample) order: all samples share a layer's
                  ///< weights before moving on (throughput-oriented)
    Greedy,       ///< priority rules, no lookahead
    Dp,           ///< priority rules + bounded DP lookahead (the paper's)
    Dtt,          ///< Dijkstra-Through-Time optimal search (dtt_search.hh);
                  ///< produced by baselines::DttPlanner, never DpScheduler
};

/** Short printable name of a scheduler mode. */
const char *schedModeName(SchedMode mode);

/** One atom bound to one engine within a Round. */
struct Placement
{
    AtomId atom = kNoAtom;
    int engine = -1;
};

/** Atoms executing concurrently; synchronized by the last to finish. */
struct Round
{
    std::vector<Placement> placements;
};

/** A complete mapped schedule. */
struct Schedule
{
    std::vector<Round> rounds;

    /**
     * The mode that actually produced the rounds. May differ from the
     * requested SchedulerOptions::mode: DpScheduler downgrades Dp to
     * Greedy above dpAtomLimit, and benchmarks must report the scheduler
     * that really ran.
     */
    SchedMode mode = SchedMode::Dp;

    /** Total placements across rounds. */
    std::size_t
    atomCount() const
    {
        std::size_t n = 0;
        for (const Round &r : rounds)
            n += r.placements.size();
        return n;
    }
};

/**
 * Reverse indices over a fixed schedule: the round each atom runs in and
 * the rounds in which each atom's consumers run (exact next-use data for
 * Algorithm 3).
 */
class ScheduleIndex
{
  public:
    /** Build indices for @p schedule over a DAG of @p atom_count atoms. */
    ScheduleIndex(const Schedule &schedule, std::size_t atom_count);

    /** Round of @p atom; -1 when unscheduled. */
    int roundOf(AtomId atom) const;

    /** Engine of @p atom; -1 when unscheduled. */
    int engineOf(AtomId atom) const;

  private:
    std::vector<int> _round;
    std::vector<int> _engine;
};

} // namespace ad::core
