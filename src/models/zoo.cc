#include "models.hh"

#include "util/common.hh"

namespace ad::models {

using graph::Graph;
using graph::LayerId;
using graph::TensorShape;

graph::Graph
tinyLinear(int channels)
{
    Graph g("tiny_linear");
    LayerId x = g.input(TensorShape{32, 32, 3});
    x = g.conv(x, channels, 3, 1, 1, "conv1");
    x = g.pool(x, 2, 2, 0, "pool1");
    x = g.conv(x, channels * 2, 3, 1, 1, "conv2");
    x = g.globalPool(x, "gpool");
    g.fullyConnected(x, 10, "fc");
    g.validate();
    return g;
}

graph::Graph
tinyResidual()
{
    Graph g("tiny_residual");
    LayerId x = g.input(TensorShape{16, 16, 16});
    LayerId a = g.conv(x, 16, 3, 1, 1, "conv_a");
    LayerId b = g.conv(a, 16, 3, 1, 1, "conv_b");
    LayerId s = g.add({b, x}, "add1");
    LayerId c = g.conv(s, 32, 3, 2, 1, "conv_c");
    LayerId p = g.conv(s, 32, 1, 2, 0, "proj");
    g.add({c, p}, "add2");
    g.validate();
    return g;
}

graph::Graph
tinyBranchy()
{
    Graph g("tiny_branchy");
    LayerId x = g.input(TensorShape{16, 16, 32});
    LayerId b1 = g.conv(x, 16, 1, 1, 0, "b1");
    LayerId b2 = g.conv(x, 16, 3, 1, 1, "b2");
    LayerId b3 = g.pool(x, 3, 1, 1, "b3_pool");
    b3 = g.conv(b3, 16, 1, 1, 0, "b3");
    LayerId cat = g.concat({b1, b2, b3}, "cat");
    g.conv(cat, 64, 3, 1, 1, "tail");
    g.validate();
    return g;
}

const std::vector<ModelEntry> &
tableOneModels()
{
    static const std::vector<ModelEntry> entries = {
        {"vgg19", "layer cascaded", vgg19},
        {"resnet50", "residual bypass", resnet50},
        {"resnet152", "residual bypass", resnet152},
        {"resnet1001", "residual bypass", resnet1001},
        {"inception_v3", "branching cells", inceptionV3},
        {"nasnet", "NAS-generated", nasnet},
        {"pnasnet", "NAS-generated", pnasnet},
        {"efficientnet", "NAS-generated", efficientNet},
    };
    return entries;
}

graph::Graph
buildByName(const std::string &name)
{
    for (const ModelEntry &entry : tableOneModels()) {
        if (entry.name == name)
            return entry.build();
    }
    if (name == "tiny_linear")
        return tinyLinear();
    if (name == "tiny_residual")
        return tinyResidual();
    if (name == "tiny_branchy")
        return tinyBranchy();
    fatal("unknown model '", name, "'");
}

} // namespace ad::models
