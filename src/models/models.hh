#pragma once

/**
 * @file
 * Model zoo: programmatic builders for the eight evaluation workloads of
 * the paper's Table I, plus small synthetic networks used by the tests.
 *
 * This substitutes the paper's ONNX front-end: the scheduler consumes the
 * ad::graph IR either way, so constructing the same architectures in C++
 * exercises the identical downstream path. Activation and batch-norm
 * operators are folded into their producing layers (standard inference
 * deployment practice), so our vertex counts are lower than the ONNX node
 * counts of Table I; MAC-layer structure and tensor shapes are faithful.
 */

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace ad::models {

/** VGG-19: 16 conv + 5 pool + 3 FC, strictly layer-cascaded. */
graph::Graph vgg19();

/** ResNet-50 (ImageNet bottleneck, stages 3-4-6-3). */
graph::Graph resnet50();

/** ResNet-152 (ImageNet bottleneck, stages 3-8-36-3). */
graph::Graph resnet152();

/** ResNet-1001 (pre-activation bottleneck, 3 stages x 111 blocks). */
graph::Graph resnet1001();

/** Inception-v3 with the full A/B/C/D/E cell sequence. */
graph::Graph inceptionV3();

/** NASNet-A (mobile, N=4, F=44): NAS-generated branching cells. */
graph::Graph nasnet();

/** PNASNet-5 (mobile-scale): progressive-NAS irregular cells. */
graph::Graph pnasnet();

/** EfficientNet-B0: MBConv inverted-bottleneck stages. */
graph::Graph efficientNet();

/**
 * Tiny linear CNN (input-conv-pool-conv-fc) for fast unit tests.
 * @p channels scales the width.
 */
graph::Graph tinyLinear(int channels = 32);

/** Tiny two-branch residual network for dependency-logic tests. */
graph::Graph tinyResidual();

/** Tiny 3-branch cell followed by concat, exercising irregular wiring. */
graph::Graph tinyBranchy();

/** Named builder entry for the registry. */
struct ModelEntry
{
    std::string name;                       ///< registry key (e.g. "resnet50")
    std::string description;                ///< Table I "characteristics"
    std::function<graph::Graph()> build;    ///< builder function
};

/** All eight Table-I workloads in the paper's order. */
const std::vector<ModelEntry> &tableOneModels();

/** Build a Table-I model (or one of the tiny test networks) by name;
 * fatals on unknown name. */
graph::Graph buildByName(const std::string &name);

} // namespace ad::models
