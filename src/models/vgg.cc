#include "models.hh"

namespace ad::models {

using graph::Graph;
using graph::LayerId;
using graph::TensorShape;

graph::Graph
vgg19()
{
    Graph g("vgg19");
    LayerId x = g.input(TensorShape{224, 224, 3});

    auto block = [&g](LayerId src, int channels, int convs,
                      const std::string &stage) {
        LayerId y = src;
        for (int i = 0; i < convs; ++i) {
            y = g.conv(y, channels, 3, 1, 1,
                       stage + "_conv" + std::to_string(i + 1));
        }
        return g.pool(y, 2, 2, 0, stage + "_pool");
    };

    x = block(x, 64, 2, "s1");
    x = block(x, 128, 2, "s2");
    x = block(x, 256, 4, "s3");
    x = block(x, 512, 4, "s4");
    x = block(x, 512, 4, "s5");

    x = g.fullyConnected(x, 4096, "fc6");
    x = g.fullyConnected(x, 4096, "fc7");
    g.fullyConnected(x, 1000, "fc8");
    g.validate();
    return g;
}

} // namespace ad::models
