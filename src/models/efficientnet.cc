#include "models.hh"

namespace ad::models {

using graph::Graph;
using graph::LayerId;
using graph::TensorShape;

namespace {

/**
 * MBConv inverted-bottleneck block: 1x1 expand, depthwise kxk, 1x1
 * project, residual add when stride is 1 and channels match. The
 * squeeze-excite gate (a scalar per-channel multiply) is negligible MAC
 * work and is folded away.
 */
LayerId
mbconv(Graph &g, LayerId src, int out_c, int k, int stride, int expand,
       const std::string &n)
{
    const graph::Layer &in_layer = g.layer(src);
    const int in_c = in_layer.out.c;
    LayerId y = src;
    if (expand != 1)
        y = g.conv(y, in_c * expand, 1, 1, 0, n + "_exp");
    y = g.depthwiseConv(y, k, stride, -1, n + "_dw");
    y = g.conv(y, out_c, 1, 1, 0, n + "_proj");
    if (stride == 1 && in_c == out_c)
        y = g.add({y, src}, n + "_add");
    return y;
}

} // namespace

graph::Graph
efficientNet()
{
    // EfficientNet-B0 stage layout (Tan & Le, Table 1).
    Graph g("efficientnet");
    LayerId x = g.input(TensorShape{224, 224, 3});
    x = g.conv(x, 32, 3, 2, 1, "stem");

    struct Stage
    {
        int expand, out_c, k, stride, repeat;
    };
    const Stage stages[] = {
        {1, 16, 3, 1, 1},  {6, 24, 3, 2, 2},  {6, 40, 5, 2, 2},
        {6, 80, 3, 2, 3},  {6, 112, 5, 1, 3}, {6, 192, 5, 2, 4},
        {6, 320, 3, 1, 1},
    };
    int idx = 0;
    for (const Stage &s : stages) {
        for (int r = 0; r < s.repeat; ++r) {
            const int stride = (r == 0) ? s.stride : 1;
            x = mbconv(g, x, s.out_c, s.k, stride, s.expand,
                       "mb" + std::to_string(idx++));
        }
    }
    x = g.conv(x, 1280, 1, 1, 0, "head");
    x = g.globalPool(x, "gpool");
    g.fullyConnected(x, 1000, "fc");
    g.validate();
    return g;
}

} // namespace ad::models
