#include "models.hh"

namespace ad::models {

using graph::Graph;
using graph::LayerId;
using graph::TensorShape;

namespace {

/**
 * Standard ImageNet bottleneck residual block: 1x1 reduce, 3x3, 1x1
 * expand, optional projection shortcut when shape changes.
 */
LayerId
bottleneck(Graph &g, LayerId src, int mid_c, int out_c, int stride,
           const std::string &name)
{
    LayerId y = g.conv(src, mid_c, 1, 1, 0, name + "_a");
    y = g.conv(y, mid_c, 3, stride, 1, name + "_b");
    y = g.conv(y, out_c, 1, 1, 0, name + "_c");

    LayerId shortcut = src;
    const graph::Layer &in_layer = g.layer(src);
    if (stride != 1 || in_layer.out.c != out_c)
        shortcut = g.conv(src, out_c, 1, stride, 0, name + "_proj");
    return g.add({y, shortcut}, name + "_add");
}

Graph
imagenetResnet(const std::string &name, const std::vector<int> &stages)
{
    Graph g(name);
    LayerId x = g.input(TensorShape{224, 224, 3});
    x = g.conv(x, 64, 7, 2, 3, "conv1");
    x = g.pool(x, 3, 2, 1, "pool1");

    const int mids[4] = {64, 128, 256, 512};
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const int mid = mids[s];
        const int out = mid * 4;
        for (int b = 0; b < stages[s]; ++b) {
            const int stride = (b == 0 && s > 0) ? 2 : 1;
            x = bottleneck(g, x, mid, out, stride,
                           "s" + std::to_string(s + 2) + "b" +
                               std::to_string(b + 1));
        }
    }
    x = g.globalPool(x, "gpool");
    g.fullyConnected(x, 1000, "fc");
    g.validate();
    return g;
}

} // namespace

graph::Graph
resnet50()
{
    return imagenetResnet("resnet50", {3, 4, 6, 3});
}

graph::Graph
resnet152()
{
    return imagenetResnet("resnet152", {3, 8, 36, 3});
}

graph::Graph
resnet1001()
{
    // Pre-activation ResNet-1001: 3 stages of 111 bottleneck blocks on
    // 32x32 inputs (He et al., "Identity Mappings in Deep Residual
    // Networks"). 9 * 111 + 2 = 1001 weighted layers.
    Graph g("resnet1001");
    LayerId x = g.input(TensorShape{32, 32, 3});
    x = g.conv(x, 16, 3, 1, 1, "conv1");

    const int blocks = 111;
    const int mids[3] = {16, 32, 64};
    for (int s = 0; s < 3; ++s) {
        const int mid = mids[s];
        const int out = mid * 4;
        for (int b = 0; b < blocks; ++b) {
            const int stride = (b == 0 && s > 0) ? 2 : 1;
            x = bottleneck(g, x, mid, out, stride,
                           "s" + std::to_string(s + 1) + "b" +
                               std::to_string(b + 1));
        }
    }
    x = g.globalPool(x, "gpool");
    g.fullyConnected(x, 10, "fc");
    g.validate();
    return g;
}

} // namespace ad::models
