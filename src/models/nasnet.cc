#include "models.hh"

namespace ad::models {

using graph::Graph;
using graph::LayerId;
using graph::TensorShape;

namespace {

/**
 * Separable convolution: depthwise k x k followed by pointwise 1x1.
 * NASNet applies each separable conv twice; we keep a single dw+pw pair,
 * which preserves shapes and branching structure at lower vertex count.
 */
LayerId
sepConv(Graph &g, LayerId src, int out_c, int k, int stride,
        const std::string &n)
{
    LayerId y = g.depthwiseConv(src, k, stride, -1, n + "_dw");
    return g.conv(y, out_c, 1, 1, 0, n + "_pw");
}

/** 1x1 projection to @p out_c channels (with optional stride). */
LayerId
fit(Graph &g, LayerId src, int out_c, int stride, const std::string &n)
{
    return g.conv(src, out_c, 1, stride, 0, n);
}

/**
 * NASNet-A normal cell (5 blocks, concatenated). @p h is the current
 * hidden state, @p h_prev the previous cell's output (already projected
 * to @p f channels and matching spatial dims).
 */
LayerId
nasnetNormalCell(Graph &g, LayerId h, LayerId h_prev, int f,
                 const std::string &n)
{
    LayerId x = fit(g, h, f, 1, n + "_fit");
    LayerId xp = fit(g, h_prev, f, 1, n + "_fitp");

    LayerId b1 = g.add({sepConv(g, x, f, 3, 1, n + "_b1s3"), x},
                       n + "_b1");
    LayerId b2 = g.add({sepConv(g, xp, f, 3, 1, n + "_b2s3"),
                        sepConv(g, x, f, 5, 1, n + "_b2s5")},
                       n + "_b2");
    LayerId b3 = g.add({g.pool(x, 3, 1, 1, n + "_b3avg"), xp}, n + "_b3");
    LayerId b4 = g.add({g.pool(xp, 3, 1, 1, n + "_b4avga"),
                        g.pool(xp, 3, 1, 1, n + "_b4avgb")},
                       n + "_b4");
    LayerId b5 = g.add({sepConv(g, xp, f, 5, 1, n + "_b5s5"),
                        sepConv(g, x, f, 3, 1, n + "_b5s3")},
                       n + "_b5");

    return g.concat({b1, b2, b3, b4, b5}, n + "_cat");
}

/** NASNet-A reduction cell (stride-2 blocks, concatenated). */
LayerId
nasnetReductionCell(Graph &g, LayerId h, LayerId h_prev, int f,
                    const std::string &n)
{
    LayerId x = fit(g, h, f, 1, n + "_fit");
    LayerId xp = fit(g, h_prev, f, 1, n + "_fitp");

    LayerId b1 = g.add({sepConv(g, xp, f, 7, 2, n + "_b1s7"),
                        sepConv(g, x, f, 5, 2, n + "_b1s5")},
                       n + "_b1");
    LayerId b2 = g.add({g.pool(x, 3, 2, 1, n + "_b2max"),
                        sepConv(g, xp, f, 7, 2, n + "_b2s7")},
                       n + "_b2");
    LayerId b3 = g.add({g.pool(x, 3, 2, 1, n + "_b3avg"),
                        sepConv(g, xp, f, 5, 2, n + "_b3s5")},
                       n + "_b3");
    // Blocks operating on already-reduced intermediates.
    LayerId b4 = g.add({g.pool(b1, 3, 1, 1, n + "_b4avg"), b2}, n + "_b4");
    LayerId b5 = g.add({sepConv(g, b1, f, 3, 1, n + "_b5s3"),
                        g.pool(b1, 3, 1, 1, n + "_b5max")},
                       n + "_b5");

    return g.concat({b2, b3, b4, b5}, n + "_cat");
}

/**
 * PNASNet-5 cell: the 5-block progressive-NAS cell (Liu et al., Fig. 1),
 * used by the paper's Fig. 6(a) as the irregular-topology example.
 */
LayerId
pnasnetCell(Graph &g, LayerId h, LayerId h_prev, int f, int stride,
            const std::string &n)
{
    LayerId x = fit(g, h, f, 1, n + "_fit");
    LayerId xp = fit(g, h_prev, f, 1, n + "_fitp");

    LayerId b1 = g.add({sepConv(g, xp, f, 7, stride, n + "_b1s7"),
                        g.pool(xp, 3, stride, 1, n + "_b1max")},
                       n + "_b1");
    LayerId b2 = g.add({sepConv(g, x, f, 5, stride, n + "_b2s5"),
                        sepConv(g, xp, f, 7, stride, n + "_b2s7b")},
                       n + "_b2");
    LayerId b3 = g.add({sepConv(g, x, f, 5, stride, n + "_b3s5"),
                        sepConv(g, x, f, 3, stride, n + "_b3s3")},
                       n + "_b3");
    LayerId b4 = g.add({sepConv(g, b3, f, 3, 1, n + "_b4s3"),
                        g.pool(x, 3, stride, 1, n + "_b4max")},
                       n + "_b4");
    LayerId b5 = g.add({sepConv(g, x, f, 3, stride, n + "_b5s3"),
                        fit(g, x, f, stride, n + "_b5fit")},
                       n + "_b5");

    return g.concat({b1, b2, b4, b5}, n + "_cat");
}

} // namespace

graph::Graph
nasnet()
{
    // NASNet-A (mobile): stem, then 3 stages of N=4 normal cells with a
    // reduction cell between stages. Filters 44 -> 88 -> 176.
    Graph g("nasnet");
    LayerId x = g.input(TensorShape{224, 224, 3});
    x = g.conv(x, 32, 3, 2, 1, "stem");
    LayerId prev = x;

    const int stage_filters[3] = {44, 88, 176};
    const int cells_per_stage = 4;
    for (int s = 0; s < 3; ++s) {
        const int f = stage_filters[s];
        if (s > 0) {
            LayerId reduced = nasnetReductionCell(
                g, x, prev, f, "r" + std::to_string(s));
            // After reduction the previous state's spatial dims no longer
            // match; carry the reduced tensor as both states.
            prev = reduced;
            x = reduced;
        }
        for (int c = 0; c < cells_per_stage; ++c) {
            LayerId y = nasnetNormalCell(
                g, x, prev, f,
                "s" + std::to_string(s) + "c" + std::to_string(c));
            prev = x;
            x = y;
        }
    }
    x = g.globalPool(x, "gpool");
    g.fullyConnected(x, 1000, "fc");
    g.validate();
    return g;
}

graph::Graph
pnasnet()
{
    // PNASNet-5 (mobile-scale): 3 stages of 3 cells, reduction via
    // stride-2 first cell of each later stage. Filters 54 -> 108 -> 216.
    Graph g("pnasnet");
    LayerId x = g.input(TensorShape{224, 224, 3});
    x = g.conv(x, 32, 3, 2, 1, "stem");
    LayerId prev = x;

    const int stage_filters[3] = {54, 108, 216};
    const int cells_per_stage = 3;
    for (int s = 0; s < 3; ++s) {
        const int f = stage_filters[s];
        for (int c = 0; c < cells_per_stage; ++c) {
            const int stride = (s > 0 && c == 0) ? 2 : 1;
            LayerId y = pnasnetCell(
                g, x, prev, f, stride,
                "s" + std::to_string(s) + "c" + std::to_string(c));
            prev = (stride == 2) ? y : x;
            x = y;
        }
    }
    x = g.globalPool(x, "gpool");
    g.fullyConnected(x, 1000, "fc");
    g.validate();
    return g;
}

} // namespace ad::models
