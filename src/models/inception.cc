#include "models.hh"

namespace ad::models {

using graph::Graph;
using graph::LayerId;
using graph::TensorShape;

namespace {

/** Inception-A cell: 1x1 / 5x5 / double-3x3 / pool branches, concat. */
LayerId
inceptionA(Graph &g, LayerId src, int pool_c, const std::string &n)
{
    LayerId b1 = g.conv(src, 64, 1, 1, 0, n + "_1x1");

    LayerId b2 = g.conv(src, 48, 1, 1, 0, n + "_5x5r");
    b2 = g.conv(b2, 64, 5, 1, 2, n + "_5x5");

    LayerId b3 = g.conv(src, 64, 1, 1, 0, n + "_3x3r");
    b3 = g.conv(b3, 96, 3, 1, 1, n + "_3x3a");
    b3 = g.conv(b3, 96, 3, 1, 1, n + "_3x3b");

    LayerId b4 = g.pool(src, 3, 1, 1, n + "_pool");
    b4 = g.conv(b4, pool_c, 1, 1, 0, n + "_poolp");

    return g.concat({b1, b2, b3, b4}, n + "_cat");
}

/** Inception-B (grid reduction 35->17). */
LayerId
inceptionB(Graph &g, LayerId src, const std::string &n)
{
    LayerId b1 = g.conv(src, 384, 3, 2, 0, n + "_3x3");

    LayerId b2 = g.conv(src, 64, 1, 1, 0, n + "_dblr");
    b2 = g.conv(b2, 96, 3, 1, 1, n + "_dbla");
    b2 = g.conv(b2, 96, 3, 2, 0, n + "_dblb");

    LayerId b3 = g.pool(src, 3, 2, 0, n + "_pool");
    return g.concat({b1, b2, b3}, n + "_cat");
}

/** Inception-C cell with factorized 7x7 convolutions. */
LayerId
inceptionC(Graph &g, LayerId src, int c7, const std::string &n)
{
    LayerId b1 = g.conv(src, 192, 1, 1, 0, n + "_1x1");

    LayerId b2 = g.conv(src, c7, 1, 1, 0, n + "_7r");
    b2 = g.convRect(b2, c7, 1, 7, 1, -1, n + "_1x7");
    b2 = g.convRect(b2, 192, 7, 1, 1, -1, n + "_7x1");

    LayerId b3 = g.conv(src, c7, 1, 1, 0, n + "_dblr");
    b3 = g.convRect(b3, c7, 7, 1, 1, -1, n + "_d7x1a");
    b3 = g.convRect(b3, c7, 1, 7, 1, -1, n + "_d1x7a");
    b3 = g.convRect(b3, c7, 7, 1, 1, -1, n + "_d7x1b");
    b3 = g.convRect(b3, 192, 1, 7, 1, -1, n + "_d1x7b");

    LayerId b4 = g.pool(src, 3, 1, 1, n + "_pool");
    b4 = g.conv(b4, 192, 1, 1, 0, n + "_poolp");

    return g.concat({b1, b2, b3, b4}, n + "_cat");
}

/** Inception-D (grid reduction 17->8). */
LayerId
inceptionD(Graph &g, LayerId src, const std::string &n)
{
    LayerId b1 = g.conv(src, 192, 1, 1, 0, n + "_3r");
    b1 = g.conv(b1, 320, 3, 2, 0, n + "_3x3");

    LayerId b2 = g.conv(src, 192, 1, 1, 0, n + "_7r");
    b2 = g.convRect(b2, 192, 1, 7, 1, -1, n + "_1x7");
    b2 = g.convRect(b2, 192, 7, 1, 1, -1, n + "_7x1");
    b2 = g.conv(b2, 192, 3, 2, 0, n + "_3x3b");

    LayerId b3 = g.pool(src, 3, 2, 0, n + "_pool");
    return g.concat({b1, b2, b3}, n + "_cat");
}

/** Inception-E cell with the expanded-filter-bank split branches. */
LayerId
inceptionE(Graph &g, LayerId src, const std::string &n)
{
    LayerId b1 = g.conv(src, 320, 1, 1, 0, n + "_1x1");

    LayerId b2 = g.conv(src, 384, 1, 1, 0, n + "_3r");
    LayerId b2a = g.convRect(b2, 384, 1, 3, 1, -1, n + "_1x3");
    LayerId b2b = g.convRect(b2, 384, 3, 1, 1, -1, n + "_3x1");

    LayerId b3 = g.conv(src, 448, 1, 1, 0, n + "_dblr");
    b3 = g.conv(b3, 384, 3, 1, 1, n + "_dbl3");
    LayerId b3a = g.convRect(b3, 384, 1, 3, 1, -1, n + "_d1x3");
    LayerId b3b = g.convRect(b3, 384, 3, 1, 1, -1, n + "_d3x1");

    LayerId b4 = g.pool(src, 3, 1, 1, n + "_pool");
    b4 = g.conv(b4, 192, 1, 1, 0, n + "_poolp");

    return g.concat({b1, b2a, b2b, b3a, b3b, b4}, n + "_cat");
}

} // namespace

graph::Graph
inceptionV3()
{
    Graph g("inception_v3");
    LayerId x = g.input(TensorShape{299, 299, 3});

    // Stem.
    x = g.conv(x, 32, 3, 2, 0, "stem1");
    x = g.conv(x, 32, 3, 1, 0, "stem2");
    x = g.conv(x, 64, 3, 1, 1, "stem3");
    x = g.pool(x, 3, 2, 0, "stem_pool1");
    x = g.conv(x, 80, 1, 1, 0, "stem4");
    x = g.conv(x, 192, 3, 1, 0, "stem5");
    x = g.pool(x, 3, 2, 0, "stem_pool2");

    x = inceptionA(g, x, 32, "mixed0");
    x = inceptionA(g, x, 64, "mixed1");
    x = inceptionA(g, x, 64, "mixed2");
    x = inceptionB(g, x, "mixed3");
    x = inceptionC(g, x, 128, "mixed4");
    x = inceptionC(g, x, 160, "mixed5");
    x = inceptionC(g, x, 160, "mixed6");
    x = inceptionC(g, x, 192, "mixed7");
    x = inceptionD(g, x, "mixed8");
    x = inceptionE(g, x, "mixed9");
    x = inceptionE(g, x, "mixed10");

    x = g.globalPool(x, "gpool");
    g.fullyConnected(x, 1000, "fc");
    g.validate();
    return g;
}

} // namespace ad::models
