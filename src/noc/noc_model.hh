#pragma once

/**
 * @file
 * Cycle and energy cost model for inter-engine transfers over the mesh.
 *
 * Transfers in one scheduling Round are modeled together: each transfer is
 * serialized onto the links of its XY route, link occupancies accumulate,
 * and a transfer's completion time adds the worst queueing delay it
 * observes along its route (credit-based wormhole behaves this way when a
 * bottleneck link backs flits up). This captures the contention that makes
 * the mapping permutation of Sec. IV-C matter, without flit-level detail.
 */

#include <vector>

#include "noc/mesh.hh"

namespace ad::noc {

/** Static NoC parameters (TILE64-style defaults from the paper). */
struct NocConfig
{
    int linkBits = 256;               ///< flit width per link per cycle
    Cycles hopLatency = 1;            ///< router+link delay per hop
    double energyPjPerBitPerHop = 0.61; ///< Tangram's published constant
    int creditDepth = 4;              ///< per-link credit buffer (flits)

    /** Validate parameters; fatals on nonsense values. */
    void validate() const;
};

/** One engine-to-engine payload. */
struct Transfer
{
    NodeId src = 0;
    NodeId dst = 0;
    Bytes bytes = 0;
};

/** One payload replicated from @c src to several destinations along a
 * multicast tree (the union of the XY routes; each link carries the
 * payload once). */
struct Multicast
{
    NodeId src = 0;
    std::vector<NodeId> dsts;
    Bytes bytes = 0;
};

/** Result of scheduling one batch of concurrent transfers. */
struct BatchResult
{
    Cycles makespan = 0;         ///< cycles until the last transfer lands
    PicoJoules energyPj = 0.0;   ///< total hop energy of the batch
    Bytes totalBytes = 0;        ///< payload bytes moved
    std::uint64_t totalHopBytes = 0; ///< sum over transfers of bytes*hops
};

/** Cost model for a fixed mesh and NocConfig. */
class NocModel
{
  public:
    /** Build a model over @p topo with parameters @p config. */
    NocModel(MeshTopology topo, NocConfig config = {});

    /** Serialization cycles of @p bytes on one link. */
    Cycles serializationCycles(Bytes bytes) const;

    /** Latency of a single transfer on an idle network. */
    Cycles transferLatency(const Transfer &t) const;

    /** Hop energy of a single transfer. */
    PicoJoules transferEnergy(const Transfer &t) const;

    /**
     * Makespan and energy of @p transfers issued simultaneously,
     * accounting for link contention along XY routes.
     */
    BatchResult batch(const std::vector<Transfer> &transfers) const;

    /**
     * Per-transfer completion cycles for @p transfers issued
     * simultaneously (same contention model as batch()).
     */
    std::vector<Cycles> completions(
        const std::vector<Transfer> &transfers) const;

    /**
     * Contention model for concurrent multicasts: each group's payload
     * occupies every link of its route union once. @p completions_out
     * (if non-null) receives per-group, per-destination completion
     * cycles aligned with Multicast::dsts.
     */
    BatchResult multicastBatch(
        const std::vector<Multicast> &groups,
        std::vector<std::vector<Cycles>> *completions_out) const;

    /** Topology in use. */
    const MeshTopology &topology() const { return _topo; }

    /** Configuration in use. */
    const NocConfig &config() const { return _config; }

  private:
    MeshTopology _topo;
    NocConfig _config;
};

} // namespace ad::noc
