#pragma once

/**
 * @file
 * 2D-mesh topology with dimension-ordered (XY) routing, modeled after the
 * TILE64 static network the paper adopts (Sec. IV-C): single-cycle hop
 * latency between adjacent engines, full-crossbar switches, credit-based
 * flow control.
 */

#include <cstdint>
#include <vector>

#include "util/common.hh"

namespace ad::noc {

/** Engine index within the mesh (row-major). */
using NodeId = std::int32_t;

/** Directed link identifier (see MeshTopology::linkBetween). */
using LinkId = std::int32_t;

/** Grid coordinate. */
struct Coord
{
    int x = 0; ///< column
    int y = 0; ///< row

    bool operator==(const Coord &) const = default;
};

/** Rectangular mesh of engines with XY dimension-ordered routing. */
class MeshTopology
{
  public:
    /** Create an @p xdim x @p ydim mesh. */
    MeshTopology(int xdim, int ydim);

    /** Mesh width (columns). */
    int xdim() const { return _xdim; }

    /** Mesh height (rows). */
    int ydim() const { return _ydim; }

    /** Total node count. */
    int nodes() const { return _xdim * _ydim; }

    /** Coordinate of node @p id. */
    Coord coordOf(NodeId id) const;

    /** Node at coordinate @p c. */
    NodeId idOf(Coord c) const;

    /** Manhattan hop distance between @p a and @p b. */
    int hops(NodeId a, NodeId b) const;

    /**
     * Directed links on the XY route from @p a to @p b: all X-direction
     * hops first, then Y-direction hops (the paper's routing policy).
     * Empty when a == b.
     */
    std::vector<LinkId> route(NodeId a, NodeId b) const;

    /** Total directed links in the mesh (4 per node, edge-clipped). */
    int linkCount() const;

    /** Directed link from @p from to adjacent node @p to; fatals if not
     * adjacent. */
    LinkId linkBetween(NodeId from, NodeId to) const;

  private:
    int _xdim;
    int _ydim;
};

} // namespace ad::noc
