#include "mesh.hh"

#include <cstdlib>

namespace ad::noc {

MeshTopology::MeshTopology(int xdim, int ydim)
    : _xdim(xdim), _ydim(ydim)
{
    if (xdim <= 0 || ydim <= 0)
        fatal("mesh dimensions must be positive: ", xdim, "x", ydim);
}

Coord
MeshTopology::coordOf(NodeId id) const
{
    adAssert(id >= 0 && id < nodes(), "node id out of range: ", id);
    return Coord{id % _xdim, id / _xdim};
}

NodeId
MeshTopology::idOf(Coord c) const
{
    adAssert(c.x >= 0 && c.x < _xdim && c.y >= 0 && c.y < _ydim,
             "coord out of range: (", c.x, ",", c.y, ")");
    return c.y * _xdim + c.x;
}

int
MeshTopology::hops(NodeId a, NodeId b) const
{
    const Coord ca = coordOf(a);
    const Coord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

LinkId
MeshTopology::linkBetween(NodeId from, NodeId to) const
{
    const Coord cf = coordOf(from);
    const Coord ct = coordOf(to);
    const int dx = ct.x - cf.x;
    const int dy = ct.y - cf.y;
    adAssert(std::abs(dx) + std::abs(dy) == 1,
             "linkBetween requires adjacent nodes");
    // Encode as 4 directed link slots per node: 0=+x, 1=-x, 2=+y, 3=-y.
    int dir = 0;
    if (dx == 1)
        dir = 0;
    else if (dx == -1)
        dir = 1;
    else if (dy == 1)
        dir = 2;
    else
        dir = 3;
    return from * 4 + dir;
}

int
MeshTopology::linkCount() const
{
    return nodes() * 4;
}

std::vector<LinkId>
MeshTopology::route(NodeId a, NodeId b) const
{
    std::vector<LinkId> links;
    Coord cur = coordOf(a);
    const Coord dst = coordOf(b);
    // X direction first, then Y (dimension-ordered, deadlock-free).
    while (cur.x != dst.x) {
        const int step = dst.x > cur.x ? 1 : -1;
        const NodeId from = idOf(cur);
        cur.x += step;
        links.push_back(linkBetween(from, idOf(cur)));
    }
    while (cur.y != dst.y) {
        const int step = dst.y > cur.y ? 1 : -1;
        const NodeId from = idOf(cur);
        cur.y += step;
        links.push_back(linkBetween(from, idOf(cur)));
    }
    return links;
}

} // namespace ad::noc
