#include "noc_model.hh"

#include <algorithm>

namespace ad::noc {

void
NocConfig::validate() const
{
    if (linkBits <= 0)
        fatal("NoC link width must be positive");
    if (creditDepth <= 0)
        fatal("NoC credit depth must be positive");
}

NocModel::NocModel(MeshTopology topo, NocConfig config)
    : _topo(topo), _config(config)
{
    _config.validate();
}

Cycles
NocModel::serializationCycles(Bytes bytes) const
{
    return ceilDiv<Cycles>(bytes * 8, static_cast<Cycles>(_config.linkBits));
}

Cycles
NocModel::transferLatency(const Transfer &t) const
{
    if (t.src == t.dst || t.bytes == 0)
        return 0;
    const auto hops = static_cast<Cycles>(_topo.hops(t.src, t.dst));
    return hops * _config.hopLatency + serializationCycles(t.bytes);
}

PicoJoules
NocModel::transferEnergy(const Transfer &t) const
{
    if (t.src == t.dst)
        return 0.0;
    const double bits = static_cast<double>(t.bytes) * 8.0;
    return bits * _topo.hops(t.src, t.dst) * _config.energyPjPerBitPerHop;
}

BatchResult
NocModel::batch(const std::vector<Transfer> &transfers) const
{
    BatchResult result;
    std::vector<Cycles> link_load(
        static_cast<std::size_t>(_topo.linkCount()), 0);

    // First pass: accumulate per-link occupancy.
    for (const Transfer &t : transfers) {
        if (t.src == t.dst || t.bytes == 0)
            continue;
        const Cycles ser = serializationCycles(t.bytes);
        for (LinkId link : _topo.route(t.src, t.dst))
            link_load[static_cast<std::size_t>(link)] += ser;
        result.totalBytes += t.bytes;
        result.totalHopBytes +=
            t.bytes * static_cast<std::uint64_t>(_topo.hops(t.src, t.dst));
        result.energyPj += transferEnergy(t);
    }

    // Second pass: a transfer finishes after its route latency plus the
    // full occupancy of its most congested link (wormhole flits from
    // competing transfers interleave; credits bound the in-flight depth so
    // the bottleneck link serializes everyone crossing it).
    for (const Transfer &t : transfers) {
        if (t.src == t.dst || t.bytes == 0)
            continue;
        Cycles worst = serializationCycles(t.bytes);
        for (LinkId link : _topo.route(t.src, t.dst)) {
            worst = std::max(worst,
                             link_load[static_cast<std::size_t>(link)]);
        }
        const auto hops = static_cast<Cycles>(_topo.hops(t.src, t.dst));
        result.makespan =
            std::max(result.makespan, hops * _config.hopLatency + worst);
    }
    return result;
}

BatchResult
NocModel::multicastBatch(
    const std::vector<Multicast> &groups,
    std::vector<std::vector<Cycles>> *completions_out) const
{
    BatchResult result;
    std::vector<Cycles> link_load(
        static_cast<std::size_t>(_topo.linkCount()), 0);

    // Route unions: each link of a group's tree carries the payload once.
    std::vector<std::vector<LinkId>> tree_links(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const Multicast &mc = groups[g];
        if (mc.bytes == 0)
            continue;
        auto &links = tree_links[g];
        for (NodeId dst : mc.dsts) {
            if (dst == mc.src)
                continue;
            for (LinkId link : _topo.route(mc.src, dst))
                links.push_back(link);
        }
        std::sort(links.begin(), links.end());
        links.erase(std::unique(links.begin(), links.end()),
                    links.end());

        const Cycles ser = serializationCycles(mc.bytes);
        for (LinkId link : links)
            link_load[static_cast<std::size_t>(link)] += ser;

        result.totalBytes += mc.bytes;
        result.totalHopBytes +=
            mc.bytes * static_cast<std::uint64_t>(links.size());
        result.energyPj += static_cast<double>(mc.bytes) * 8.0 *
                           static_cast<double>(links.size()) *
                           _config.energyPjPerBitPerHop;
    }

    if (completions_out)
        completions_out->assign(groups.size(), {});
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const Multicast &mc = groups[g];
        std::vector<Cycles> dst_done(mc.dsts.size(), 0);
        for (std::size_t d = 0; d < mc.dsts.size(); ++d) {
            const NodeId dst = mc.dsts[d];
            if (dst == mc.src || mc.bytes == 0)
                continue;
            Cycles worst = serializationCycles(mc.bytes);
            for (LinkId link : _topo.route(mc.src, dst)) {
                worst = std::max(
                    worst, link_load[static_cast<std::size_t>(link)]);
            }
            dst_done[d] = static_cast<Cycles>(_topo.hops(mc.src, dst)) *
                              _config.hopLatency +
                          worst;
            result.makespan = std::max(result.makespan, dst_done[d]);
        }
        if (completions_out)
            (*completions_out)[g] = std::move(dst_done);
    }
    return result;
}

std::vector<Cycles>
NocModel::completions(const std::vector<Transfer> &transfers) const
{
    std::vector<Cycles> link_load(
        static_cast<std::size_t>(_topo.linkCount()), 0);
    for (const Transfer &t : transfers) {
        if (t.src == t.dst || t.bytes == 0)
            continue;
        const Cycles ser = serializationCycles(t.bytes);
        for (LinkId link : _topo.route(t.src, t.dst))
            link_load[static_cast<std::size_t>(link)] += ser;
    }

    std::vector<Cycles> done(transfers.size(), 0);
    for (std::size_t i = 0; i < transfers.size(); ++i) {
        const Transfer &t = transfers[i];
        if (t.src == t.dst || t.bytes == 0)
            continue;
        Cycles worst = serializationCycles(t.bytes);
        for (LinkId link : _topo.route(t.src, t.dst)) {
            worst = std::max(worst,
                             link_load[static_cast<std::size_t>(link)]);
        }
        done[i] = static_cast<Cycles>(_topo.hops(t.src, t.dst)) *
                      _config.hopLatency +
                  worst;
    }
    return done;
}

} // namespace ad::noc
