#pragma once

/**
 * @file
 * Minimal leveled logger. Messages are informational only and never stop a
 * run (see @c panic / @c fatal in common.hh for errors).
 */

#include <atomic>
#include <iostream>
#include <sstream>
#include <string>

namespace ad {

/** Verbosity levels, lowest is most severe. */
enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global logging facility with a process-wide verbosity threshold. */
class Logger
{
  public:
    /** Return the process-wide logger. */
    static Logger &instance();

    /** Set the verbosity threshold; messages above it are dropped. */
    void setLevel(LogLevel level)
    {
        _level.store(level, std::memory_order_relaxed);
    }

    /** Current verbosity threshold. */
    LogLevel level() const
    {
        return _level.load(std::memory_order_relaxed);
    }

    /** Emit @p message if @p level passes the threshold. */
    void log(LogLevel level, const std::string &message);

  private:
    Logger() = default;

    /// Atomic: pool workers consult the threshold while the owning
    /// thread may adjust it between parallel regions.
    std::atomic<LogLevel> _level{LogLevel::Warn};
};

namespace detail {

template <typename... Args>
void
logAt(LogLevel level, const Args &...args)
{
    auto &logger = Logger::instance();
    if (level > logger.level())
        return;
    std::ostringstream os;
    (os << ... << args);
    logger.log(level, os.str());
}

} // namespace detail

/** Informative message the user should know but not worry about. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::logAt(LogLevel::Info, args...);
}

/** Something might not work as well as it could; worth investigating. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::logAt(LogLevel::Warn, args...);
}

/** Debug-level trace message. */
template <typename... Args>
void
trace(const Args &...args)
{
    detail::logAt(LogLevel::Debug, args...);
}

} // namespace ad
