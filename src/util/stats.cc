#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common.hh"

namespace ad {

void
RunningStats::add(double x)
{
    if (_count == 0) {
        _min = x;
        _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    ++_count;
    _sum += x;
    const double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
}

double
RunningStats::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(_count);
    const double nb = static_cast<double>(other._count);
    const double delta = other._mean - _mean;
    const double n = na + nb;
    _mean += delta * nb / n;
    _m2 += other._m2 + delta * delta * na * nb / n;
    _count += other._count;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : _lo(lo), _hi(hi), _counts(bins, 0)
{
    if (bins == 0)
        fatal("Histogram requires at least one bin");
    if (!(hi > lo))
        fatal("Histogram range must be non-empty: [", lo, ", ", hi, ")");
    _binWidth = (hi - lo) / static_cast<double>(bins);
}

void
Histogram::add(double x)
{
    double idx = (x - _lo) / _binWidth;
    auto i = static_cast<std::int64_t>(std::floor(idx));
    i = std::clamp<std::int64_t>(i, 0,
                                 static_cast<std::int64_t>(bins()) - 1);
    ++_counts[static_cast<std::size_t>(i)];
    ++_total;
}

std::uint64_t
Histogram::binCount(std::size_t i) const
{
    adAssert(i < _counts.size(), "histogram bin out of range");
    return _counts[i];
}

double
Histogram::binLow(std::size_t i) const
{
    adAssert(i < _counts.size(), "histogram bin out of range");
    return _lo + _binWidth * static_cast<double>(i);
}

double
Histogram::topWindowFraction(std::size_t k) const
{
    if (_total == 0 || k == 0)
        return 0.0;
    k = std::min(k, bins());
    std::uint64_t window = 0;
    for (std::size_t i = 0; i < k; ++i)
        window += _counts[i];
    std::uint64_t best = window;
    for (std::size_t i = k; i < bins(); ++i) {
        window += _counts[i] - _counts[i - k];
        best = std::max(best, window);
    }
    return static_cast<double>(best) / static_cast<double>(_total);
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak = 1;
    for (auto c : _counts)
        peak = std::max(peak, c);
    std::ostringstream os;
    for (std::size_t i = 0; i < bins(); ++i) {
        const auto bar =
            static_cast<std::size_t>(width * _counts[i] / peak);
        os << binLow(i) << "\t" << _counts[i] << "\t"
           << std::string(bar, '#') << '\n';
    }
    return os.str();
}

} // namespace ad
