#pragma once

/**
 * @file
 * Streaming statistics and histogram helpers used by the evaluation
 * harness (utilization averages, cycle-variance for Algorithm 1, and the
 * atom-cycle histograms of Fig. 5a).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ad {

/** Welford-style streaming mean/variance accumulator. */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples observed. */
    std::size_t count() const { return _count; }

    /** Mean of the observed samples (0 when empty). */
    double mean() const { return _mean; }

    /** Population variance of the observed samples (0 when n < 2). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observed sample (0 when empty). */
    double min() const { return _count ? _min : 0.0; }

    /** Largest observed sample (0 when empty). */
    double max() const { return _count ? _max : 0.0; }

    /** Sum of all samples. */
    double sum() const { return _sum; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Fixed-width-bin histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * Create a histogram of @p bins equal-width buckets spanning
     * [@p lo, @p hi). Values outside the range clamp to the edge buckets.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample. */
    void add(double x);

    /** Count in bucket @p i. */
    std::uint64_t binCount(std::size_t i) const;

    /** Left edge of bucket @p i. */
    double binLow(std::size_t i) const;

    /** Number of buckets. */
    std::size_t bins() const { return _counts.size(); }

    /** Total samples added. */
    std::uint64_t total() const { return _total; }

    /**
     * Fraction of samples falling in the @p k consecutive buckets with the
     * highest combined population — the "concentration" metric used to
     * quantify Fig. 5(a)'s claim that atom cycles cluster in one region.
     */
    double topWindowFraction(std::size_t k) const;

    /** Render an ASCII bar chart, @p width columns wide. */
    std::string render(std::size_t width = 50) const;

  private:
    double _lo;
    double _hi;
    double _binWidth;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _total = 0;
};

} // namespace ad
