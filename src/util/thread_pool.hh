#pragma once

/**
 * @file
 * Minimal deterministic fork-join thread pool for the compile-time
 * search stages.
 *
 * The orchestration search is side-effect-free per work item (atom
 * costing, per-layer catalog enumeration, independent strategy runs), so
 * the pool only offers a fork-join @c parallelFor / @c parallelMap: each
 * index writes its own result slot and every reduction happens
 * sequentially in index order afterwards. Results are therefore
 * bit-identical for any thread count, including 1.
 *
 * Nested calls (a pool worker invoking parallelFor again) execute inline
 * on the calling thread — no deadlock, same results.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ad::util {

/** Fork-join worker pool; one process-wide instance via global(). */
class ThreadPool
{
  public:
    /** Create a pool running work on @p threads threads (including the
     * calling thread); @p threads <= 1 means fully inline execution. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute work (>= 1). */
    int threads() const { return _threads; }

    /**
     * Run @p fn(i) for every i in [0, n), blocking until all complete.
     * Indices are claimed dynamically, so @p fn must only write state
     * owned by its index. The first exception thrown by any index is
     * rethrown here after the join.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** parallelFor collecting fn(i) into a result vector (index order —
     * deterministic for any thread count). */
    template <typename T, typename Fn>
    std::vector<T>
    parallelMap(std::size_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n,
                    [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** The process-wide pool. Sized by setGlobalThreads() when called
     * first, else by the AD_THREADS environment variable, else by
     * std::thread::hardware_concurrency(). */
    static ThreadPool &global();

    /** Size the global pool to @p n threads (<= 0 restores the
     * environment/hardware default). Recreates the pool; call before or
     * between parallel regions, not during one. */
    static void setGlobalThreads(int n);

    /** Thread count of the global pool. */
    static int globalThreads();

  private:
    /** One fork-join region in flight. */
    struct Job
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::size_t active = 0;     ///< workers not yet done (under _mu)
        std::exception_ptr error;   ///< first failure (under _mu)
        std::uint64_t id = 0;
    };

    void workerLoop();
    void runShare(Job &job);

    int _threads;
    std::vector<std::thread> _workers;

    std::mutex _submitMu; ///< serializes top-level parallelFor calls
    std::mutex _mu;
    std::condition_variable _wake;
    std::condition_variable _done;
    Job *_job = nullptr;
    std::uint64_t _jobCounter = 0;
    bool _stop = false;
};

} // namespace ad::util
