#pragma once

/**
 * @file
 * Minimal deterministic fork-join thread pool for the compile-time
 * search stages.
 *
 * The orchestration search is side-effect-free per work item (atom
 * costing, per-layer catalog enumeration, independent strategy runs), so
 * the pool only offers a fork-join @c parallelFor / @c parallelMap: each
 * index writes its own result slot and every reduction happens
 * sequentially in index order afterwards. Results are therefore
 * bit-identical for any thread count, including 1.
 *
 * Nested calls (a pool worker invoking parallelFor again) execute inline
 * on the calling thread — no deadlock, same results.
 *
 * Locking discipline (checked by Clang thread-safety analysis under
 * `AD_STATIC_ANALYSIS`): `_mu` guards the job hand-off state (`_job`,
 * `_jobCounter`, `_stop`) and, by convention, the `active` / `error`
 * fields of the Job in flight; `_submitMu` serializes top-level
 * parallelFor calls and is always acquired before `_mu`.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hh"

namespace ad::util {

/** Fork-join worker pool; one process-wide instance via global(). */
class ThreadPool
{
  public:
    /** Create a pool running work on @p threads threads (including the
     * calling thread); @p threads <= 1 means fully inline execution. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute work (>= 1). */
    int threads() const { return _threads; }

    /**
     * Run @p fn(i) for every i in [0, n), blocking until all complete.
     * Indices are claimed dynamically, so @p fn must only write state
     * owned by its index. The first exception thrown by any index is
     * rethrown here after the join.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
        AD_EXCLUDES(_mu);

    /** parallelFor collecting fn(i) into a result vector (index order —
     * deterministic for any thread count). */
    template <typename T, typename Fn>
    std::vector<T>
    parallelMap(std::size_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n,
                    [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Join every worker thread. Idempotent; implied by the destructor.
     * Must not be called concurrently with parallelFor (the pool is
     * owned by the orchestrating thread). After shutdown the pool stays
     * usable: parallelFor degrades to inline execution on the calling
     * thread, with identical results.
     */
    void shutdown() AD_EXCLUDES(_mu);

    /** The process-wide pool. Sized by setGlobalThreads() when called
     * first, else by the AD_THREADS environment variable, else by
     * std::thread::hardware_concurrency(). */
    static ThreadPool &global();

    /** Size the global pool to @p n threads (<= 0 restores the
     * environment/hardware default). Recreates the pool; call before or
     * between parallel regions, not during one. */
    static void setGlobalThreads(int n);

    /** Thread count of the global pool. */
    static int globalThreads();

  private:
    /** One fork-join region in flight. */
    struct Job
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::size_t active = 0;     ///< workers not yet done (under _mu)
        std::exception_ptr error;   ///< first failure (under _mu)
        std::uint64_t id = 0;
    };

    void workerLoop() AD_EXCLUDES(_mu);
    void runShare(Job &job) AD_EXCLUDES(_mu);

    int _threads;
    /// Worker threads. Mutated only by the constructor and shutdown(),
    /// both of which run on the owning thread, so unguarded.
    std::vector<std::thread> _workers;

    /// Serializes top-level parallelFor calls; acquired before _mu.
    Mutex _submitMu;
    Mutex _mu;
    /// condition_variable_any: waits directly on the annotated Mutex.
    std::condition_variable_any _wake;
    std::condition_variable_any _done;
    Job *_job AD_GUARDED_BY(_mu) = nullptr;
    std::uint64_t _jobCounter AD_GUARDED_BY(_mu) = 0;
    bool _stop AD_GUARDED_BY(_mu) = false;
};

} // namespace ad::util
