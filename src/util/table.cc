#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ad {

void
TextTable::setHeader(std::vector<std::string> header)
{
    _header = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    _rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto account = [&widths](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    account(_header);
    for (const auto &row : _rows)
        account(row);

    std::ostringstream os;
    auto emit = [&os, &widths](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << row[i];
            if (i + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };
    if (!_header.empty()) {
        emit(_header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : _rows)
        emit(row);
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream os;
    auto emit = [&os](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    if (!_header.empty())
        emit(_header);
    for (const auto &row : _rows)
        emit(row);
    return os.str();
}

std::string
fmtDouble(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string
fmtPercent(double value, int digits)
{
    return fmtDouble(value * 100.0, digits) + "%";
}

std::string
fmtSpeedup(double value, int digits)
{
    return fmtDouble(value, digits) + "x";
}

} // namespace ad
