#pragma once

/**
 * @file
 * Common type aliases and error-handling primitives shared by every
 * atomic-dataflow module.
 *
 * Follows the gem5 convention of separating @c panic (internal invariant
 * violation, i.e. a bug in this library) from @c fatal (a condition caused
 * by user input such as an inconsistent configuration).
 */

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ad {

/** Cycle count at the accelerator clock. */
using Cycles = std::uint64_t;

/** Data size in bytes. */
using Bytes = std::uint64_t;

/** Energy in picojoules. */
using PicoJoules = double;

/** Number of multiply-accumulate operations. */
using MacCount = std::uint64_t;

/** Thrown by @c panic — an internal invariant of the library was violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** Thrown by @c fatal — the user supplied an invalid configuration. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail {

inline void
formatInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/**
 * Abort with an InternalError. Call when something happens that should
 * never happen regardless of what the user does.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::formatInto(os, args...);
    throw InternalError(os.str());
}

/**
 * Abort with a ConfigError. Call when the run cannot continue due to a
 * condition that is the user's fault (bad configuration, invalid model).
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::formatInto(os, args...);
    throw ConfigError(os.str());
}

/** Assert an internal invariant; panics with @p args on failure. */
template <typename... Args>
void
adAssert(bool condition, const Args &...args)
{
    if (!condition)
        panic(args...);
}

/** Integer ceiling division. */
template <typename T>
constexpr T
ceilDiv(T numerator, T denominator)
{
    return (numerator + denominator - 1) / denominator;
}

/** Round @p value up to the next multiple of @p multiple. */
template <typename T>
constexpr T
roundUp(T value, T multiple)
{
    return ceilDiv(value, multiple) * multiple;
}

} // namespace ad
