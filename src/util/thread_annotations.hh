#pragma once

/**
 * @file
 * Clang thread-safety-analysis annotations and annotated lock types.
 *
 * The parallel orchestration stack (ThreadPool, the shared cost-model
 * memo stores) promises that every shared mutable field is protected by
 * a named mutex. Under Clang with `-Wthread-safety` (enabled by the
 * `AD_STATIC_ANALYSIS` CMake option, see scripts/check_static.sh) that
 * promise is checked at compile time: reading or writing a field marked
 * `AD_GUARDED_BY(mu)` without holding `mu` is a hard error. Under every
 * other compiler the macros expand to nothing and the code is unchanged.
 *
 * Clang's analysis only understands lock types whose acquire/release
 * functions carry capability attributes; `std::mutex` from libstdc++ has
 * none. So this header also provides @ref ad::util::Mutex and
 * @ref ad::util::MutexLock — thin annotated wrappers over `std::mutex`
 * that the analysis can follow. All lock-protected state in `src/` uses
 * these instead of bare `std::mutex` / `std::lock_guard`.
 *
 * The macro set mirrors the de-facto standard (Abseil / LLVM)
 * `thread_annotations.h` vocabulary with an `AD_` prefix.
 */

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define AD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AD_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Field is protected by capability @p x (a Mutex member or global). */
#define AD_GUARDED_BY(x) AD_THREAD_ANNOTATION(guarded_by(x))

/** Pointed-to data is protected by capability @p x. */
#define AD_PT_GUARDED_BY(x) AD_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the listed capabilities held on entry. */
#define AD_REQUIRES(...) \
    AD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define AD_ACQUIRE(...) \
    AD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define AD_RELEASE(...) \
    AD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function attempts acquisition; @p ... = success value then caps. */
#define AD_TRY_ACQUIRE(...) \
    AD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define AD_EXCLUDES(...) AD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares a type to be a capability ("mutex"). */
#define AD_CAPABILITY(x) AD_THREAD_ANNOTATION(capability(x))

/** Declares an RAII type whose lifetime holds a capability. */
#define AD_SCOPED_CAPABILITY AD_THREAD_ANNOTATION(scoped_lockable)

/** Return value is a reference to the named capability. */
#define AD_RETURN_CAPABILITY(x) \
    AD_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: function deliberately opts out of the analysis. */
#define AD_NO_THREAD_SAFETY_ANALYSIS \
    AD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ad::util {

/**
 * `std::mutex` wrapper Clang's thread-safety analysis can follow.
 *
 * Satisfies *BasicLockable*, so it works directly with
 * `std::condition_variable_any` (the pool's wait loops hold the Mutex
 * across `wait()`; the analysis treats the capability as continuously
 * held through the wait, which matches the caller-visible contract).
 */
class AD_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() AD_ACQUIRE() { _mu.lock(); }
    void unlock() AD_RELEASE() { _mu.unlock(); }
    bool try_lock() AD_TRY_ACQUIRE(true) { return _mu.try_lock(); }

  private:
    std::mutex _mu;
};

/** RAII scoped lock over @ref Mutex (annotated `std::lock_guard`). */
class AD_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) AD_ACQUIRE(mu)
        : _mu(mu)
    {
        _mu.lock();
    }
    ~MutexLock() AD_RELEASE() { _mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &_mu;
};

} // namespace ad::util
