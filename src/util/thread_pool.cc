#include "thread_pool.hh"

#include <cstdlib>
#include <memory>

#include "util/common.hh"

namespace ad::util {

namespace {

/** True on threads currently executing pool work (workers, or the
 * submitting thread while it runs its share): nested parallelFor calls
 * from such threads execute inline. */
thread_local bool tlsInPool = false;

int
defaultThreadCount()
{
    if (const char *env = std::getenv("AD_THREADS")) {
        const int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
}

Mutex gGlobalMu;
/// 0 = derive from environment/hardware
int gGlobalThreads AD_GUARDED_BY(gGlobalMu) = 0;
std::unique_ptr<ThreadPool> gGlobalPool AD_GUARDED_BY(gGlobalMu);

} // namespace

ThreadPool::ThreadPool(int threads)
    : _threads(threads > 1 ? threads : 1)
{
    _workers.reserve(static_cast<std::size_t>(_threads - 1));
    for (int i = 1; i < _threads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        MutexLock lk(_mu);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &t : _workers)
        t.join();
    _workers.clear();
}

void
ThreadPool::runShare(Job &job)
{
    for (;;) {
        const std::size_t i =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return;
        try {
            (*job.fn)(i);
        } catch (...) {
            MutexLock lk(_mu);
            if (!job.error)
                job.error = std::current_exception();
            // Abandon remaining indices; in-flight ones finish.
            job.next.store(job.n, std::memory_order_relaxed);
        }
    }
}

void
ThreadPool::workerLoop()
{
    tlsInPool = true;
    std::uint64_t last_job = 0;
    for (;;) {
        Job *job = nullptr;
        {
            MutexLock lk(_mu);
            while (!_stop && (_job == nullptr || _job->id == last_job))
                _wake.wait(_mu);
            if (_stop)
                return;
            job = _job;
            last_job = job->id;
        }
        runShare(*job);
        {
            MutexLock lk(_mu);
            adAssert(job->active > 0, "thread pool join underflow");
            if (--job->active == 0)
                _done.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (_threads <= 1 || n == 1 || tlsInPool || _workers.empty()) {
        // Inline execution: single-threaded pool, trivial region, a
        // nested call from inside a parallel region, or a pool whose
        // workers were already shut down.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    MutexLock submit(_submitMu);
    Job job;
    job.fn = &fn;
    job.n = n;
    {
        MutexLock lk(_mu);
        job.active = _workers.size();
        job.id = ++_jobCounter;
        _job = &job;
    }
    _wake.notify_all();

    tlsInPool = true;
    runShare(job);
    tlsInPool = false;

    {
        MutexLock lk(_mu);
        while (job.active != 0)
            _done.wait(_mu);
        _job = nullptr;
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

ThreadPool &
ThreadPool::global()
{
    MutexLock lk(gGlobalMu);
    if (!gGlobalPool) {
        const int n =
            gGlobalThreads > 0 ? gGlobalThreads : defaultThreadCount();
        gGlobalPool = std::make_unique<ThreadPool>(n);
    }
    return *gGlobalPool;
}

void
ThreadPool::setGlobalThreads(int n)
{
    MutexLock lk(gGlobalMu);
    gGlobalThreads = n > 0 ? n : 0;
    gGlobalPool.reset(); // lazily rebuilt at the requested size
}

int
ThreadPool::globalThreads()
{
    return global().threads();
}

} // namespace ad::util
