#pragma once

/**
 * @file
 * Deterministic random number generation for the search heuristics.
 *
 * All stochastic algorithms in this library (simulated annealing, the
 * genetic-algorithm comparator) draw from an explicitly seeded Rng so that
 * experiments are reproducible run-to-run.
 */

#include <cstdint>
#include <random>

namespace ad {

/** Seedable pseudo-random source wrapping a Mersenne Twister. */
class Rng
{
  public:
    /** Construct with an explicit @p seed (default fixed for repro runs). */
    explicit Rng(std::uint64_t seed = 0xad0f10c5ULL)
        : _gen(seed)
    {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(_gen);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(_gen);
    }

    /** Bernoulli draw with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Normal draw with @p mean and @p stddev. */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(_gen);
    }

    /** Access the underlying engine (e.g. for std::shuffle). */
    std::mt19937_64 &engine() { return _gen; }

  private:
    std::mt19937_64 _gen;
};

} // namespace ad
