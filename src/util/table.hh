#pragma once

/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harness to print the
 * rows/series the paper's tables and figures report.
 */

#include <string>
#include <vector>

namespace ad {

/** Column-aligned plain-text table builder. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append one data row; width need not match the header. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows (header excluded). */
    std::size_t rows() const { return _rows.size(); }

    /** Render with aligned columns separated by two spaces. */
    std::string render() const;

    /** Render as CSV (no quoting of embedded commas — keep cells simple). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/** Format @p value with @p digits decimal places. */
std::string fmtDouble(double value, int digits = 2);

/** Format @p value as a percentage ("12.3%") with @p digits decimals. */
std::string fmtPercent(double value, int digits = 1);

/** Format a speedup factor ("1.45x"). */
std::string fmtSpeedup(double value, int digits = 2);

} // namespace ad
