#include "logging.hh"

namespace ad {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &message)
{
    const char *tag = "";
    switch (level) {
      case LogLevel::Error:
        tag = "error: ";
        break;
      case LogLevel::Warn:
        tag = "warn: ";
        break;
      case LogLevel::Info:
        tag = "info: ";
        break;
      case LogLevel::Debug:
        tag = "debug: ";
        break;
    }
    std::cerr << tag << message << '\n';
}

} // namespace ad
