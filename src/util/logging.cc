#include "logging.hh"

#include "util/thread_annotations.hh"

namespace ad {

namespace {

/// Serializes sink writes so messages from concurrent pool workers
/// cannot interleave mid-line.
util::Mutex gSinkMu;

} // namespace

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &message)
{
    const char *tag = "";
    switch (level) {
      case LogLevel::Error:
        tag = "error: ";
        break;
      case LogLevel::Warn:
        tag = "warn: ";
        break;
      case LogLevel::Info:
        tag = "info: ";
        break;
      case LogLevel::Debug:
        tag = "debug: ";
        break;
    }
    util::MutexLock lk(gSinkMu);
    std::cerr << tag << message << '\n';
}

} // namespace ad
